//! # pgs-queries — node-similarity query answering
//!
//! The three query types of Sect. V-A, each answered two ways:
//!
//! * **exactly** on the input graph ([`exact`]), producing the ground
//!   truth `x`, and
//! * **approximately** on a summary graph ([`approx`]) without
//!   reconstructing it (Appendix A, Alg. 4–6), producing `x̂`.
//!
//! Query types:
//!
//! * `HOP` — shortest-path hop counts from a query node (Alg. 5).
//! * `RWR` — random walk with restart scores, restart probability 0.05
//!   (Alg. 6, paper ref. \[44\]).
//! * `PHP` — penalized hitting probability with decay `c = 0.95`
//!   (paper refs. \[45\], \[46\]).
//!
//! Accuracy is measured by SMAPE (lower better) and Spearman rank
//! correlation (higher better) in [`metrics`], exactly as in Sect. V-A.
//! On weighted summaries (e.g. from the SAAGs baseline) queries take the
//! superedge weights into account, as footnoted in Appendix A.
//!
//! ## Serving many queries
//!
//! The free functions compile a throwaway plan per call. For serving
//! workloads, build a [`QueryEngine`] once per summary: it precomputes a
//! struct-of-arrays supernode plan, answers every query type from
//! reusable scratch buffers, and offers `*_batch` methods that fan
//! independent query nodes out over [`pgs_core::exec::Exec`] with
//! byte-identical results at any thread count. The original per-node
//! implementations live on in [`reference`] as the oracle/baseline path.

#![forbid(unsafe_code)]

pub mod approx;
pub mod engine;
pub mod exact;
pub mod extended;
pub mod metrics;
pub mod reference;

pub use approx::{get_neighbors, hops_summary, php_summary, rwr_summary};
pub use engine::QueryEngine;
pub use exact::{hops_exact, php_exact, rwr_exact};
pub use extended::{
    clustering_coefficient_exact, clustering_coefficient_summary, degrees_summary,
    eigenvector_centrality_exact, eigenvector_centrality_summary, pagerank_exact, pagerank_summary,
};
pub use metrics::{smape, spearman};

/// Default RWR restart probability (Sect. V-A).
pub const RWR_RESTART: f64 = 0.05;
/// Default PHP decay constant (Sect. V-A).
pub const PHP_DECAY: f64 = 0.95;
/// Default iteration cap for the iterative solvers.
pub const MAX_ITERS: usize = 100;
/// Default L∞ convergence tolerance for the iterative solvers.
pub const TOLERANCE: f64 = 1e-9;

/// Replaces unreachable hop entries (`u32::MAX`) by the longest observed
/// finite hop count, per the HOP convention of Sect. V-A ("if there is no
/// path between them, we used the length of the longest path in the given
/// (sub)graph"). Returns the result as `f64` for metric computation.
pub fn hops_to_f64(hops: &[u32]) -> Vec<f64> {
    let max_finite = hops
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0);
    hops.iter()
        .map(|&d| {
            if d == u32::MAX {
                max_finite as f64
            } else {
                d as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_to_f64_fills_unreachable() {
        let hops = vec![0, 1, 2, u32::MAX];
        assert_eq!(hops_to_f64(&hops), vec![0.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn hops_to_f64_all_unreachable() {
        let hops = vec![u32::MAX, u32::MAX];
        assert_eq!(hops_to_f64(&hops), vec![0.0, 0.0]);
    }
}
