//! Accuracy metrics of Sect. V-A: SMAPE and Spearman rank correlation.

/// Symmetric mean absolute percentage error (lower is better):
///
/// ```text
/// SMAPE(x, x̂) = (1/|V|) Σ_u |x_u − x̂_u| / (|x_u| + |x̂_u|)
/// ```
///
/// with the `0/0` terms defined as 0 (paper: "if x_u = x̂_u = 0, 0 is
/// used instead"). Always in `[0, 1]`.
///
/// # Panics
/// Panics if the vectors differ in length or are empty.
pub fn smape(x: &[f64], xhat: &[f64]) -> f64 {
    assert_eq!(x.len(), xhat.len(), "answer vectors must align");
    assert!(!x.is_empty(), "cannot score empty answers");
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(xhat.iter()) {
        let denom = a.abs() + b.abs();
        if denom > 0.0 {
            acc += (a - b).abs() / denom;
        }
    }
    acc / x.len() as f64
}

/// Ranks with average tie-handling (fractional ranks), as required for
/// Spearman correlation over score vectors that often contain ties.
fn average_ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("finite scores"));
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        // Positions i..=j hold tied values; assign their average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation coefficient (higher is better): the Pearson
/// correlation between the average-tie ranks of `x` and `x̂`. Returns 0
/// when either vector is constant (undefined correlation).
///
/// # Panics
/// Panics if the vectors differ in length or are empty.
pub fn spearman(x: &[f64], xhat: &[f64]) -> f64 {
    assert_eq!(x.len(), xhat.len(), "answer vectors must align");
    assert!(!x.is_empty(), "cannot score empty answers");
    let rx = average_ranks(x);
    let ry = average_ranks(xhat);
    pearson(&rx, &ry)
}

/// Pearson correlation of two equal-length vectors; 0 when either is
/// constant.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        let da = a - mx;
        let db = b - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smape_zero_for_identical() {
        let x = vec![0.5, 0.2, 0.0, 1.0];
        assert_eq!(smape(&x, &x), 0.0);
    }

    #[test]
    fn smape_one_for_disjoint_support() {
        let x = vec![1.0, 0.0];
        let y = vec![0.0, 2.0];
        assert_eq!(smape(&x, &y), 1.0);
    }

    #[test]
    fn smape_in_unit_interval() {
        let x = vec![0.1, 0.9, 0.0, 0.4];
        let y = vec![0.3, 0.1, 0.2, 0.0];
        let v = smape(&x, &y);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn smape_zero_pairs_ignored() {
        let x = vec![0.0, 1.0];
        let y = vec![0.0, 1.0];
        assert_eq!(smape(&x, &y), 0.0);
    }

    #[test]
    fn smape_is_symmetric() {
        let x = vec![0.2, 0.5, 0.9];
        let y = vec![0.4, 0.1, 0.8];
        assert!((smape(&x, &y) - smape(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn spearman_perfect_for_monotone() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_negative_for_reversed() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = vec![1.0, 1.0, 2.0, 3.0];
        let y = vec![1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_vector_is_zero() {
        let x = vec![1.0, 1.0, 1.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(spearman(&x, &y), 0.0);
    }

    #[test]
    fn spearman_invariant_to_monotone_transform() {
        let x = vec![0.1, 0.4, 0.2, 0.9, 0.3];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.powi(3) * 100.0).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_ranks_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "answer vectors must align")]
    fn mismatched_lengths_panic() {
        let _ = smape(&[1.0], &[1.0, 2.0]);
    }
}
