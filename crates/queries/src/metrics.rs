//! Accuracy metrics of Sect. V-A: SMAPE and Spearman rank correlation.

/// Symmetric mean absolute percentage error (lower is better):
///
/// ```text
/// SMAPE(x, x̂) = (1/|V|) Σ_u |x_u − x̂_u| / (|x_u| + |x̂_u|)
/// ```
///
/// with the `0/0` terms defined as 0 (paper: "if x_u = x̂_u = 0, 0 is
/// used instead"). Always in `[0, 1]` and always finite:
///
/// * empty vectors score 0 (perfect agreement over nothing);
/// * a pair of equal infinities scores 0, any other pair involving a
///   non-finite value (NaN anywhere, mismatched or one-sided infinity)
///   scores the maximal per-term error 1.
///
/// # Panics
/// Panics if the vectors differ in length (a programming error, unlike
/// degenerate answer *values*, which serving paths can produce).
pub fn smape(x: &[f64], xhat: &[f64]) -> f64 {
    assert_eq!(x.len(), xhat.len(), "answer vectors must align");
    if x.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(xhat.iter()) {
        if a.is_finite() && b.is_finite() {
            let denom = a.abs() + b.abs();
            if denom > 0.0 {
                acc += (a - b).abs() / denom;
            }
        } else if a != b {
            // NaN anywhere, or infinities that disagree: maximal error.
            // Equal infinities (a == b) count as exact agreement.
            acc += 1.0;
        }
    }
    acc / x.len() as f64
}

/// Ranks with average tie-handling (fractional ranks), as required for
/// Spearman correlation over score vectors that often contain ties.
///
/// Values are ordered (and ties detected) by [`f64::total_cmp`], so
/// non-finite scores get well-defined deterministic ranks instead of
/// poisoning the sort: `-∞` ranks below every finite value, `+∞` above,
/// and NaNs at the extremes in a fixed order.
fn average_ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[idx[j + 1]].total_cmp(&x[idx[i]]).is_eq() {
            j += 1;
        }
        // Positions i..=j hold tied values; assign their average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation coefficient (higher is better): the Pearson
/// correlation between the average-tie ranks of `x` and `x̂`. Always
/// finite: returns 0 when either vector is empty or constant (undefined
/// correlation), and ranks non-finite values deterministically via
/// [`f64::total_cmp`] instead of propagating NaN.
///
/// # Panics
/// Panics if the vectors differ in length.
pub fn spearman(x: &[f64], xhat: &[f64]) -> f64 {
    assert_eq!(x.len(), xhat.len(), "answer vectors must align");
    if x.is_empty() {
        return 0.0;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(xhat);
    pearson(&rx, &ry)
}

/// Pearson correlation of two equal-length vectors; 0 when either is
/// constant.
fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        let da = a - mx;
        let db = b - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smape_zero_for_identical() {
        let x = vec![0.5, 0.2, 0.0, 1.0];
        assert_eq!(smape(&x, &x), 0.0);
    }

    #[test]
    fn smape_one_for_disjoint_support() {
        let x = vec![1.0, 0.0];
        let y = vec![0.0, 2.0];
        assert_eq!(smape(&x, &y), 1.0);
    }

    #[test]
    fn smape_in_unit_interval() {
        let x = vec![0.1, 0.9, 0.0, 0.4];
        let y = vec![0.3, 0.1, 0.2, 0.0];
        let v = smape(&x, &y);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn smape_zero_pairs_ignored() {
        let x = vec![0.0, 1.0];
        let y = vec![0.0, 1.0];
        assert_eq!(smape(&x, &y), 0.0);
    }

    #[test]
    fn smape_is_symmetric() {
        let x = vec![0.2, 0.5, 0.9];
        let y = vec![0.4, 0.1, 0.8];
        assert!((smape(&x, &y) - smape(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn spearman_perfect_for_monotone() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_negative_for_reversed() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = vec![1.0, 1.0, 2.0, 3.0];
        let y = vec![1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_vector_is_zero() {
        let x = vec![1.0, 1.0, 1.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(spearman(&x, &y), 0.0);
    }

    #[test]
    fn spearman_invariant_to_monotone_transform() {
        let x = vec![0.1, 0.4, 0.2, 0.9, 0.3];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.powi(3) * 100.0).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_ranks_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "answer vectors must align")]
    fn mismatched_lengths_panic() {
        let _ = smape(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn empty_slices_score_zero() {
        assert_eq!(smape(&[], &[]), 0.0);
        assert_eq!(spearman(&[], &[]), 0.0);
    }

    #[test]
    fn smape_non_finite_values_are_defined() {
        // NaN anywhere: maximal per-term error, never NaN out.
        assert_eq!(smape(&[f64::NAN], &[1.0]), 1.0);
        assert_eq!(smape(&[0.5, f64::NAN], &[0.5, f64::NAN]), 0.5);
        // Equal infinities agree; mismatched or one-sided ones don't.
        assert_eq!(smape(&[f64::INFINITY], &[f64::INFINITY]), 0.0);
        assert_eq!(smape(&[f64::INFINITY], &[f64::NEG_INFINITY]), 1.0);
        assert_eq!(smape(&[f64::INFINITY], &[3.0]), 1.0);
        let v = smape(&[1.0, f64::INFINITY], &[2.0, f64::INFINITY]);
        assert!(v.is_finite() && (0.0..=1.0).contains(&v));
    }

    #[test]
    fn spearman_non_finite_values_are_defined() {
        // Infinities rank at the extremes: order is preserved, so a
        // monotone pairing still correlates perfectly.
        let x = [f64::NEG_INFINITY, 0.0, 1.0, f64::INFINITY];
        let y = [1.0, 2.0, 3.0, 4.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        // NaNs get deterministic ranks instead of poisoning the sort.
        let with_nan = [1.0, f64::NAN, 2.0];
        let r = spearman(&with_nan, &[1.0, 2.0, 3.0]);
        assert!(r.is_finite());
        assert_eq!(r, spearman(&with_nan, &[1.0, 2.0, 3.0]));
    }

    #[test]
    fn spearman_both_constant_is_zero() {
        assert_eq!(spearman(&[2.0, 2.0, 2.0], &[5.0, 5.0, 5.0]), 0.0);
    }
}
