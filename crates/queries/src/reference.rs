//! Paper-literal per-node query implementations, kept as the *reference
//! path*.
//!
//! These are the original free-function bodies that answered every query
//! by iterating over all `|V|` node states each pass. They remain for
//! two reasons:
//!
//! 1. **Oracle** — the [`crate::engine::QueryEngine`] collapses per-node
//!    state to per-supernode state (see `engine.rs` for why that is
//!    exact); the equivalence test-suite checks the engine against these
//!    independent implementations on random summaries.
//! 2. **Baseline** — `exp_query_throughput` measures the engine's
//!    plan-reuse and batching gains against this per-call path, which
//!    recomputes weighted degrees and reallocates all its `|V|`-sized
//!    buffers on every invocation.
//!
//! Production callers should use [`crate::engine::QueryEngine`] (or the
//! public free functions, which wrap it).

use pgs_core::summary::{Summary, SuperId};
use pgs_graph::NodeId;

use crate::{MAX_ITERS, TOLERANCE};

/// Per-node HOP reference (Alg. 5): BFS hop counts from `q` on `Ĝ`,
/// assigning distances member-by-member. Unreachable nodes get
/// `u32::MAX`.
pub fn hops_summary(s: &Summary, q: NodeId) -> Vec<u32> {
    let n = s.num_nodes();
    let mut dist = vec![u32::MAX; n];
    dist[q as usize] = 0;
    // Supernode-level BFS: when a supernode is first reached at hop `d`,
    // all of its still-unassigned members are at hop `d` (members share
    // reconstructed neighborhoods). Each supernode expands exactly once;
    // an already-expanded target (only ever the query supernode, whose
    // non-query members start unassigned) just gets its members filled.
    let mut expanded = vec![false; s.num_supernodes()];
    let mut frontier: Vec<SuperId> = Vec::new();
    let sq = s.supernode_of(q);
    expanded[sq as usize] = true;
    frontier.push(sq);
    let mut d = 0u32;
    let mut next: Vec<SuperId> = Vec::new();
    while !frontier.is_empty() {
        d += 1;
        next.clear();
        for &x in &frontier {
            for &(y, _) in s.neighbor_supers(x) {
                for &v in s.members(y) {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = d;
                    }
                }
                if !expanded[y as usize] {
                    expanded[y as usize] = true;
                    next.push(y);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    dist
}

/// Weighted reconstructed degree of every supernode's members:
/// `d̂(u) = Σ_{Y ∈ sadj(S_u)} w(S_u,Y)·|Y| − w(S_u,S_u)` (self-loop term
/// excludes the node itself). Identical for all members of a supernode.
pub(crate) fn weighted_degrees(s: &Summary) -> Vec<f64> {
    let mut deg = vec![0.0f64; s.num_supernodes()];
    for x in 0..s.num_supernodes() as SuperId {
        let mut d = 0.0;
        for &(y, w) in s.neighbor_supers(x) {
            d += w as f64 * s.supernode_size(y) as f64;
            if y == x {
                d -= w as f64; // members are not their own neighbors
            }
        }
        deg[x as usize] = d;
    }
    deg
}

fn self_loop_weights(s: &Summary) -> Vec<f64> {
    (0..s.num_supernodes() as SuperId)
        .map(|x| {
            s.neighbor_supers(x)
                .iter()
                .find(|&&(y, _)| y == x)
                .map_or(0.0, |&(_, w)| w as f64)
        })
        .collect()
}

/// Per-node RWR reference (Alg. 6): power iteration with one state per
/// node; each iteration costs `O(|V| + |P|)`.
pub fn rwr_summary(s: &Summary, q: NodeId, restart: f64) -> Vec<f64> {
    let n = s.num_nodes();
    assert!((q as usize) < n, "query node out of range");
    assert!((0.0..1.0).contains(&restart), "restart must be in [0, 1)");
    let p = 1.0 - restart;
    let s_count = s.num_supernodes();
    let sdeg = weighted_degrees(s);
    let self_loop_w = self_loop_weights(s);

    let mut r = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    // Scratch: per-supernode outgoing mass and incoming weighted sums.
    let mut mass = vec![0.0f64; s_count];
    let mut insum = vec![0.0f64; s_count];
    for _ in 0..MAX_ITERS {
        // mass[X] = Σ_{u ∈ X} r_u / d̂(u).
        mass.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n as NodeId {
            let x = s.supernode_of(u) as usize;
            if sdeg[x] > 0.0 {
                mass[x] += r[u as usize] / sdeg[x];
            }
        }
        // insum[Y] = Σ_{X ∈ sadj(Y)} w(X,Y) · mass[X].
        insum.iter_mut().for_each(|x| *x = 0.0);
        for y in 0..s_count as SuperId {
            let mut acc = 0.0;
            for &(x, w) in s.neighbor_supers(y) {
                acc += w as f64 * mass[x as usize];
            }
            insum[y as usize] = acc;
        }
        // next[v] = insum[S_v] − self-walk correction (v cannot walk to
        // itself under a self-loop).
        let mut sum = 0.0;
        for v in 0..n as NodeId {
            let y = s.supernode_of(v) as usize;
            let mut val = insum[y];
            if self_loop_w[y] > 0.0 && sdeg[y] > 0.0 {
                val -= self_loop_w[y] * r[v as usize] / sdeg[y];
            }
            let val = p * val;
            next[v as usize] = val;
            sum += val;
        }
        next[q as usize] += 1.0 - sum;
        let diff = r
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        std::mem::swap(&mut r, &mut next);
        if diff < TOLERANCE {
            break;
        }
    }
    r
}

/// Per-node PHP reference; `c` is the decay constant. Each iteration
/// costs `O(|V| + |P|)`.
pub fn php_summary(s: &Summary, q: NodeId, c: f64) -> Vec<f64> {
    let n = s.num_nodes();
    assert!((q as usize) < n, "query node out of range");
    assert!((0.0..1.0).contains(&c), "decay must be in [0, 1)");
    let s_count = s.num_supernodes();
    let sdeg = weighted_degrees(s);
    let self_loop_w = self_loop_weights(s);

    let mut php = vec![0.0f64; n];
    php[q as usize] = 1.0;
    let mut next = vec![0.0f64; n];
    let mut total = vec![0.0f64; s_count]; // Σ php over members
    let mut insum = vec![0.0f64; s_count];
    for _ in 0..MAX_ITERS {
        total.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n as NodeId {
            total[s.supernode_of(u) as usize] += php[u as usize];
        }
        insum.iter_mut().for_each(|x| *x = 0.0);
        for y in 0..s_count as SuperId {
            let mut acc = 0.0;
            for &(x, w) in s.neighbor_supers(y) {
                acc += w as f64 * total[x as usize];
            }
            insum[y as usize] = acc;
        }
        let mut diff = 0.0f64;
        for u in 0..n as NodeId {
            if u == q {
                next[u as usize] = 1.0;
                continue;
            }
            let y = s.supernode_of(u) as usize;
            if sdeg[y] <= 0.0 {
                next[u as usize] = 0.0;
                continue;
            }
            let mut acc = insum[y];
            if self_loop_w[y] > 0.0 {
                acc -= self_loop_w[y] * php[u as usize]; // exclude self
            }
            next[u as usize] = c * acc / sdeg[y];
        }
        for u in 0..n {
            diff = diff.max((next[u] - php[u]).abs());
        }
        std::mem::swap(&mut php, &mut next);
        if diff < TOLERANCE {
            break;
        }
    }
    php
}

/// Per-node degree reference: degrees of every node in `Ĝ`.
pub fn degrees_summary(s: &Summary) -> Vec<usize> {
    let s_count = s.num_supernodes();
    let mut super_deg = vec![0usize; s_count];
    let mut has_loop = vec![false; s_count];
    for x in 0..s_count as SuperId {
        let mut d = 0usize;
        for &(y, _) in s.neighbor_supers(x) {
            d += s.supernode_size(y);
            if y == x {
                has_loop[x as usize] = true;
            }
        }
        super_deg[x as usize] = d;
    }
    (0..s.num_nodes() as NodeId)
        .map(|u| {
            let x = s.supernode_of(u) as usize;
            super_deg[x] - usize::from(has_loop[x])
        })
        .collect()
}

/// Per-node PageRank reference on `Ĝ`; dangling mass is redistributed
/// uniformly. `O(|V| + |P|)` per iteration.
pub fn pagerank_summary(s: &Summary, damping: f64) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let n = s.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let s_count = s.num_supernodes();
    let mut sdeg = vec![0.0f64; s_count];
    let mut self_w = vec![0.0f64; s_count];
    for x in 0..s_count as SuperId {
        let mut d = 0.0;
        for &(y, w) in s.neighbor_supers(x) {
            d += w as f64 * s.supernode_size(y) as f64;
            if y == x {
                d -= w as f64;
                self_w[x as usize] = w as f64;
            }
        }
        sdeg[x as usize] = d;
    }

    let mut pr = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut mass = vec![0.0f64; s_count];
    let mut insum = vec![0.0f64; s_count];
    for _ in 0..MAX_ITERS {
        mass.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for u in 0..n as NodeId {
            let x = s.supernode_of(u) as usize;
            if sdeg[x] > 0.0 {
                mass[x] += pr[u as usize] / sdeg[x];
            } else {
                dangling += pr[u as usize];
            }
        }
        insum.iter_mut().for_each(|x| *x = 0.0);
        for y in 0..s_count as SuperId {
            let mut acc = 0.0;
            for &(x, w) in s.neighbor_supers(y) {
                acc += w as f64 * mass[x as usize];
            }
            insum[y as usize] = acc;
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        let mut diff = 0.0f64;
        for u in 0..n as NodeId {
            let y = s.supernode_of(u) as usize;
            let mut val = insum[y];
            if self_w[y] > 0.0 && sdeg[y] > 0.0 {
                val -= self_w[y] * pr[u as usize] / sdeg[y];
            }
            let val = base + damping * val;
            diff = diff.max((val - pr[u as usize]).abs());
            next[u as usize] = val;
        }
        std::mem::swap(&mut pr, &mut next);
        if diff < TOLERANCE {
            break;
        }
    }
    pr
}

/// Per-node eigenvector-centrality reference on `Ĝ` by power iteration.
/// Returns the L2-normalized dominant eigenvector; zero vector if `Ĝ`
/// has no edges.
pub fn eigenvector_centrality_summary(s: &Summary, iters: usize) -> Vec<f64> {
    let n = s.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let s_count = s.num_supernodes();
    let self_w = self_loop_weights(s);
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0f64; n];
    let mut total = vec![0.0f64; s_count];
    let mut insum = vec![0.0f64; s_count];
    for _ in 0..iters {
        total.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n as NodeId {
            total[s.supernode_of(u) as usize] += v[u as usize];
        }
        insum.iter_mut().for_each(|x| *x = 0.0);
        for y in 0..s_count as SuperId {
            let mut acc = 0.0;
            for &(x, w) in s.neighbor_supers(y) {
                acc += w as f64 * total[x as usize];
            }
            insum[y as usize] = acc;
        }
        let mut norm = 0.0;
        for u in 0..n as NodeId {
            let y = s.supernode_of(u) as usize;
            let mut val = insum[y];
            if self_w[y] > 0.0 {
                val -= self_w[y] * v[u as usize];
            }
            next[u as usize] = val;
            norm += val * val;
        }
        if norm <= 0.0 {
            return vec![0.0; n];
        }
        let inv = 1.0 / norm.sqrt();
        next.iter_mut().for_each(|x| *x *= inv);
        std::mem::swap(&mut v, &mut next);
    }
    v
}
