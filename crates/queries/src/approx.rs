//! Approximate query answering directly on a summary graph
//! (Appendix A, Alg. 4–6) — no reconstruction is materialized.
//!
//! All routines exploit the key structural fact of summary graphs: every
//! member of a supernode has the *same* reconstructed neighborhood
//! (namely, the members of the supernode's superedge neighbors), modulo
//! excluding itself under a self-loop. Per-node loops therefore collapse
//! to per-supernode aggregation, making query time proportional to the
//! summary size rather than the reconstructed edge count.
//!
//! Superedge weights participate as edge weights of the reconstructed
//! multigraph (Sect. V-A footnote on weighted summary graphs); for
//! PeGaSus/SSumM summaries all weights are 1 and the formulas reduce to
//! the unweighted versions.
//!
//! The iterative functions here are convenience wrappers that compile a
//! throwaway [`QueryEngine`] plan per call. Callers answering more than
//! one query on the same summary should build one engine and reuse it —
//! the plan and scratch buffers then amortize across the whole batch
//! (see `DESIGN.md` §6 and `exp_query_throughput` for the numbers).

use pgs_core::summary::Summary;
use pgs_graph::NodeId;

use crate::engine::QueryEngine;

/// Approximate neighborhood query (Alg. 4): the neighbors of `q` in the
/// reconstructed graph `Ĝ`, read directly from the summary in
/// `O(d̂(q))` — cheap enough that no plan is needed.
pub fn get_neighbors(s: &Summary, q: NodeId) -> Vec<NodeId> {
    let sq = s.supernode_of(q);
    let mut out = Vec::with_capacity(s.reconstructed_degree(q));
    for &(x, _) in s.neighbor_supers(sq) {
        for &v in s.members(x) {
            if v != q {
                out.push(v);
            }
        }
    }
    out
}

/// Approximate HOP query (Alg. 5): BFS hop counts from `q` on `Ĝ`.
/// Wraps a throwaway [`QueryEngine`]; see the module docs.
///
/// Unreachable nodes get `u32::MAX`; convert with
/// [`crate::hops_to_f64`] before scoring.
pub fn hops_summary(s: &Summary, q: NodeId) -> Vec<u32> {
    QueryEngine::new(s).hops(q)
}

/// Approximate RWR query (Alg. 6) on `Ĝ`; `restart` is the restarting
/// probability (paper: 0.05). Wraps a throwaway [`QueryEngine`]; see
/// the module docs.
pub fn rwr_summary(s: &Summary, q: NodeId, restart: f64) -> Vec<f64> {
    QueryEngine::new(s).rwr(q, restart)
}

/// Approximate PHP query on `Ĝ`; `c` is the decay constant (paper:
/// 0.95). Wraps a throwaway [`QueryEngine`]; see the module docs.
pub fn php_summary(s: &Summary, q: NodeId, c: f64) -> Vec<f64> {
    QueryEngine::new(s).php(q, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{hops_exact, php_exact, rwr_exact};
    use pgs_core::Summary;
    use pgs_graph::builder::graph_from_edges;
    use pgs_graph::gen::barabasi_albert;

    /// On the identity summary, every approximate answer must equal the
    /// exact answer on the input graph.
    #[test]
    fn identity_summary_neighbors_match() {
        let g = barabasi_albert(60, 3, 1);
        let s = Summary::identity(&g);
        for u in g.nodes() {
            let mut approx = get_neighbors(&s, u);
            approx.sort_unstable();
            assert_eq!(approx, g.neighbors(u));
        }
    }

    #[test]
    fn identity_summary_hops_match() {
        let g = barabasi_albert(80, 2, 5);
        let s = Summary::identity(&g);
        for q in [0u32, 10, 41] {
            assert_eq!(hops_summary(&s, q), hops_exact(&g, q));
        }
    }

    #[test]
    fn identity_summary_rwr_matches() {
        let g = barabasi_albert(60, 3, 7);
        let s = Summary::identity(&g);
        let exact = rwr_exact(&g, 3, 0.05);
        let approx = rwr_summary(&s, 3, 0.05);
        for (u, (a, b)) in exact.iter().zip(approx.iter()).enumerate() {
            assert!((a - b).abs() < 1e-8, "rwr mismatch at {u}: {a} vs {b}");
        }
    }

    #[test]
    fn identity_summary_php_matches() {
        let g = barabasi_albert(60, 3, 9);
        let s = Summary::identity(&g);
        let exact = php_exact(&g, 11, 0.95);
        let approx = php_summary(&s, 11, 0.95);
        for (u, (a, b)) in exact.iter().zip(approx.iter()).enumerate() {
            assert!((a - b).abs() < 1e-8, "php mismatch at {u}: {a} vs {b}");
        }
    }

    /// On a merged summary, answers must equal the exact answers on the
    /// *reconstructed* graph (that is the semantics of Alg. 4–6).
    #[test]
    fn merged_summary_equals_reconstruction_semantics() {
        let _g = graph_from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (3, 4), (4, 5)]);
        // Merge {0,1} (twins) and keep the rest singleton; superedges
        // {01}-2, {01}-3, 3-4, 4-5.
        let s = Summary::new(
            6,
            vec![0, 0, 1, 2, 3, 4],
            &[(0, 1, 1.0), (0, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)],
        );
        let recon = s.reconstruct();

        for q in 0..6u32 {
            // Neighbors.
            let mut nb = get_neighbors(&s, q);
            nb.sort_unstable();
            assert_eq!(nb, recon.neighbors(q), "neighbors differ at {q}");
            // Hops.
            assert_eq!(hops_summary(&s, q), hops_exact(&recon, q), "hops at {q}");
            // RWR.
            let r1 = rwr_summary(&s, q, 0.05);
            let r2 = rwr_exact(&recon, q, 0.05);
            for (u, (a, b)) in r1.iter().zip(r2.iter()).enumerate() {
                assert!((a - b).abs() < 1e-7, "rwr {q}->{u}: {a} vs {b}");
            }
            // PHP.
            let p1 = php_summary(&s, q, 0.95);
            let p2 = php_exact(&recon, q, 0.95);
            for (u, (a, b)) in p1.iter().zip(p2.iter()).enumerate() {
                assert!((a - b).abs() < 1e-7, "php {q}->{u}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn self_loop_semantics() {
        // Supernode {0,1,2} with self-loop = clique; node 3 attached.
        let s = Summary::new(4, vec![0, 0, 0, 1], &[(0, 0, 1.0), (0, 1, 1.0)]);
        let recon = s.reconstruct();
        for q in 0..4u32 {
            let mut nb = get_neighbors(&s, q);
            nb.sort_unstable();
            assert_eq!(nb, recon.neighbors(q));
            assert_eq!(hops_summary(&s, q), hops_exact(&recon, q));
            let r1 = rwr_summary(&s, q, 0.05);
            let r2 = rwr_exact(&recon, q, 0.05);
            for (a, b) in r1.iter().zip(r2.iter()) {
                assert!((a - b).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn disconnected_summary_hops() {
        let s = Summary::new(4, vec![0, 0, 1, 2], &[(0, 0, 1.0), (1, 2, 1.0)]);
        let hops = hops_summary(&s, 0);
        assert_eq!(hops[0], 0);
        assert_eq!(hops[1], 1); // via self-loop
        assert_eq!(hops[2], u32::MAX);
        assert_eq!(hops[3], u32::MAX);
    }

    #[test]
    fn rwr_summary_is_distribution() {
        let g = barabasi_albert(120, 3, 4);
        let s = pgs_core::summarize(&g, &[0], 0.5 * g.size_bits(), &Default::default());
        let r = rwr_summary(&s, 0, 0.05);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn weighted_summary_changes_scores() {
        // Two superedges with different weights from {0}: walker prefers
        // the heavier edge.
        let s = Summary::new(3, vec![0, 1, 2], &[(0, 1, 3.0), (0, 2, 1.0)]);
        let r = rwr_summary(&s, 0, 0.05);
        assert!(
            r[1] > r[2],
            "heavier superedge should attract more probability: {r:?}"
        );
    }
}
