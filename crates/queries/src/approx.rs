//! Approximate query answering directly on a summary graph
//! (Appendix A, Alg. 4–6) — no reconstruction is materialized.
//!
//! All routines exploit the key structural fact of summary graphs: every
//! member of a supernode has the *same* reconstructed neighborhood
//! (namely, the members of the supernode's superedge neighbors), modulo
//! excluding itself under a self-loop. Per-node loops therefore collapse
//! to per-supernode aggregation, making query time proportional to the
//! summary size rather than the reconstructed edge count.
//!
//! Superedge weights participate as edge weights of the reconstructed
//! multigraph (Sect. V-A footnote on weighted summary graphs); for
//! PeGaSus/SSumM summaries all weights are 1 and the formulas reduce to
//! the unweighted versions.

use pgs_core::summary::{Summary, SuperId};
use pgs_graph::NodeId;

use crate::{MAX_ITERS, TOLERANCE};

/// Approximate neighborhood query (Alg. 4): the neighbors of `q` in the
/// reconstructed graph `Ĝ`, read directly from the summary.
pub fn get_neighbors(s: &Summary, q: NodeId) -> Vec<NodeId> {
    let sq = s.supernode_of(q);
    let mut out = Vec::with_capacity(s.reconstructed_degree(q));
    for &(x, _) in s.neighbor_supers(sq) {
        for &v in s.members(x) {
            if v != q {
                out.push(v);
            }
        }
    }
    out
}

/// Approximate HOP query (Alg. 5): BFS hop counts from `q` on `Ĝ`,
/// computed at supernode granularity in `O(|S| + |P| + |V|)`.
///
/// Unreachable nodes get `u32::MAX`; convert with
/// [`crate::hops_to_f64`] before scoring.
pub fn hops_summary(s: &Summary, q: NodeId) -> Vec<u32> {
    let n = s.num_nodes();
    let mut dist = vec![u32::MAX; n];
    dist[q as usize] = 0;
    // Supernode-level BFS: when a supernode is first reached at hop `d`,
    // all of its still-unassigned members are at hop `d` (members share
    // reconstructed neighborhoods), and it is expanded exactly once.
    let mut expanded = vec![false; s.num_supernodes()];
    let mut frontier: Vec<SuperId> = Vec::new();
    let sq = s.supernode_of(q);
    expanded[sq as usize] = true;
    frontier.push(sq);
    let mut d = 0u32;
    let mut next: Vec<SuperId> = Vec::new();
    while !frontier.is_empty() {
        d += 1;
        next.clear();
        for &x in &frontier {
            for &(y, _) in s.neighbor_supers(x) {
                // Assign distance d to unassigned members of y.
                let mut reached_new = false;
                for &v in s.members(y) {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = d;
                        reached_new = true;
                    }
                }
                if !expanded[y as usize] {
                    expanded[y as usize] = true;
                    next.push(y);
                } else if reached_new {
                    // y was expanded for an earlier member (only possible
                    // for the query supernode itself); its neighbors are
                    // already settled at ≤ d, nothing more to do.
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    dist
}

/// Weighted reconstructed degree of every supernode's members:
/// `d̂(u) = Σ_{Y ∈ sadj(S_u)} w(S_u,Y)·|Y| − w(S_u,S_u)` (self-loop term
/// excludes the node itself). Identical for all members of a supernode.
fn weighted_degrees(s: &Summary) -> Vec<f64> {
    let mut deg = vec![0.0f64; s.num_supernodes()];
    for x in 0..s.num_supernodes() as SuperId {
        let mut d = 0.0;
        for &(y, w) in s.neighbor_supers(x) {
            d += w as f64 * s.supernode_size(y) as f64;
            if y == x {
                d -= w as f64; // members are not their own neighbors
            }
        }
        deg[x as usize] = d;
    }
    deg
}

/// Approximate RWR query (Alg. 6): power iteration over `Ĝ` performed at
/// supernode granularity. Each iteration costs `O(|V| + |P|)`.
///
/// `restart` is the restarting probability (paper: 0.05).
pub fn rwr_summary(s: &Summary, q: NodeId, restart: f64) -> Vec<f64> {
    let n = s.num_nodes();
    assert!((q as usize) < n, "query node out of range");
    assert!((0.0..1.0).contains(&restart), "restart must be in [0, 1)");
    let p = 1.0 - restart;
    let s_count = s.num_supernodes();
    let sdeg = weighted_degrees(s);
    let self_loop_w: Vec<f64> = (0..s_count as SuperId)
        .map(|x| {
            s.neighbor_supers(x)
                .iter()
                .find(|&&(y, _)| y == x)
                .map_or(0.0, |&(_, w)| w as f64)
        })
        .collect();

    let mut r = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    // Scratch: per-supernode outgoing mass and incoming weighted sums.
    let mut mass = vec![0.0f64; s_count];
    let mut insum = vec![0.0f64; s_count];
    for _ in 0..MAX_ITERS {
        // mass[X] = Σ_{u ∈ X} r_u / d̂(u).
        mass.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n as NodeId {
            let x = s.supernode_of(u) as usize;
            if sdeg[x] > 0.0 {
                mass[x] += r[u as usize] / sdeg[x];
            }
        }
        // insum[Y] = Σ_{X ∈ sadj(Y)} w(X,Y) · mass[X].
        insum.iter_mut().for_each(|x| *x = 0.0);
        for y in 0..s_count as SuperId {
            let mut acc = 0.0;
            for &(x, w) in s.neighbor_supers(y) {
                acc += w as f64 * mass[x as usize];
            }
            insum[y as usize] = acc;
        }
        // next[v] = insum[S_v] − self-walk correction (v cannot walk to
        // itself under a self-loop).
        let mut sum = 0.0;
        for v in 0..n as NodeId {
            let y = s.supernode_of(v) as usize;
            let mut val = insum[y];
            if self_loop_w[y] > 0.0 && sdeg[y] > 0.0 {
                val -= self_loop_w[y] * r[v as usize] / sdeg[y];
            }
            let val = p * val;
            next[v as usize] = val;
            sum += val;
        }
        next[q as usize] += 1.0 - sum;
        let diff = r
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        std::mem::swap(&mut r, &mut next);
        if diff < TOLERANCE {
            break;
        }
    }
    r
}

/// Approximate PHP query on `Ĝ` at supernode granularity; `c` is the
/// decay constant (paper: 0.95). Each iteration costs `O(|V| + |P|)`.
pub fn php_summary(s: &Summary, q: NodeId, c: f64) -> Vec<f64> {
    let n = s.num_nodes();
    assert!((q as usize) < n, "query node out of range");
    assert!((0.0..1.0).contains(&c), "decay must be in [0, 1)");
    let s_count = s.num_supernodes();
    let sdeg = weighted_degrees(s);
    let self_loop_w: Vec<f64> = (0..s_count as SuperId)
        .map(|x| {
            s.neighbor_supers(x)
                .iter()
                .find(|&&(y, _)| y == x)
                .map_or(0.0, |&(_, w)| w as f64)
        })
        .collect();

    let mut php = vec![0.0f64; n];
    php[q as usize] = 1.0;
    let mut next = vec![0.0f64; n];
    let mut total = vec![0.0f64; s_count]; // Σ php over members
    let mut insum = vec![0.0f64; s_count];
    for _ in 0..MAX_ITERS {
        total.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n as NodeId {
            total[s.supernode_of(u) as usize] += php[u as usize];
        }
        insum.iter_mut().for_each(|x| *x = 0.0);
        for y in 0..s_count as SuperId {
            let mut acc = 0.0;
            for &(x, w) in s.neighbor_supers(y) {
                acc += w as f64 * total[x as usize];
            }
            insum[y as usize] = acc;
        }
        let mut diff = 0.0f64;
        for u in 0..n as NodeId {
            if u == q {
                next[u as usize] = 1.0;
                continue;
            }
            let y = s.supernode_of(u) as usize;
            if sdeg[y] <= 0.0 {
                next[u as usize] = 0.0;
                continue;
            }
            let mut acc = insum[y];
            if self_loop_w[y] > 0.0 {
                acc -= self_loop_w[y] * php[u as usize]; // exclude self
            }
            next[u as usize] = c * acc / sdeg[y];
        }
        for u in 0..n {
            diff = diff.max((next[u] - php[u]).abs());
        }
        std::mem::swap(&mut php, &mut next);
        if diff < TOLERANCE {
            break;
        }
    }
    php
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{hops_exact, php_exact, rwr_exact};
    use pgs_core::Summary;
    use pgs_graph::builder::graph_from_edges;
    use pgs_graph::gen::barabasi_albert;

    /// On the identity summary, every approximate answer must equal the
    /// exact answer on the input graph.
    #[test]
    fn identity_summary_neighbors_match() {
        let g = barabasi_albert(60, 3, 1);
        let s = Summary::identity(&g);
        for u in g.nodes() {
            let mut approx = get_neighbors(&s, u);
            approx.sort_unstable();
            assert_eq!(approx, g.neighbors(u));
        }
    }

    #[test]
    fn identity_summary_hops_match() {
        let g = barabasi_albert(80, 2, 5);
        let s = Summary::identity(&g);
        for q in [0u32, 10, 41] {
            assert_eq!(hops_summary(&s, q), hops_exact(&g, q));
        }
    }

    #[test]
    fn identity_summary_rwr_matches() {
        let g = barabasi_albert(60, 3, 7);
        let s = Summary::identity(&g);
        let exact = rwr_exact(&g, 3, 0.05);
        let approx = rwr_summary(&s, 3, 0.05);
        for (u, (a, b)) in exact.iter().zip(approx.iter()).enumerate() {
            assert!((a - b).abs() < 1e-8, "rwr mismatch at {u}: {a} vs {b}");
        }
    }

    #[test]
    fn identity_summary_php_matches() {
        let g = barabasi_albert(60, 3, 9);
        let s = Summary::identity(&g);
        let exact = php_exact(&g, 11, 0.95);
        let approx = php_summary(&s, 11, 0.95);
        for (u, (a, b)) in exact.iter().zip(approx.iter()).enumerate() {
            assert!((a - b).abs() < 1e-8, "php mismatch at {u}: {a} vs {b}");
        }
    }

    /// On a merged summary, answers must equal the exact answers on the
    /// *reconstructed* graph (that is the semantics of Alg. 4–6).
    #[test]
    fn merged_summary_equals_reconstruction_semantics() {
        let _g = graph_from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (3, 4), (4, 5)]);
        // Merge {0,1} (twins) and keep the rest singleton; superedges
        // {01}-2, {01}-3, 3-4, 4-5.
        let s = Summary::new(
            6,
            vec![0, 0, 1, 2, 3, 4],
            &[(0, 1, 1.0), (0, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)],
        );
        let recon = s.reconstruct();

        for q in 0..6u32 {
            // Neighbors.
            let mut nb = get_neighbors(&s, q);
            nb.sort_unstable();
            assert_eq!(nb, recon.neighbors(q), "neighbors differ at {q}");
            // Hops.
            assert_eq!(hops_summary(&s, q), hops_exact(&recon, q), "hops at {q}");
            // RWR.
            let r1 = rwr_summary(&s, q, 0.05);
            let r2 = rwr_exact(&recon, q, 0.05);
            for (u, (a, b)) in r1.iter().zip(r2.iter()).enumerate() {
                assert!((a - b).abs() < 1e-7, "rwr {q}->{u}: {a} vs {b}");
            }
            // PHP.
            let p1 = php_summary(&s, q, 0.95);
            let p2 = php_exact(&recon, q, 0.95);
            for (u, (a, b)) in p1.iter().zip(p2.iter()).enumerate() {
                assert!((a - b).abs() < 1e-7, "php {q}->{u}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn self_loop_semantics() {
        // Supernode {0,1,2} with self-loop = clique; node 3 attached.
        let s = Summary::new(4, vec![0, 0, 0, 1], &[(0, 0, 1.0), (0, 1, 1.0)]);
        let recon = s.reconstruct();
        for q in 0..4u32 {
            let mut nb = get_neighbors(&s, q);
            nb.sort_unstable();
            assert_eq!(nb, recon.neighbors(q));
            assert_eq!(hops_summary(&s, q), hops_exact(&recon, q));
            let r1 = rwr_summary(&s, q, 0.05);
            let r2 = rwr_exact(&recon, q, 0.05);
            for (a, b) in r1.iter().zip(r2.iter()) {
                assert!((a - b).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn disconnected_summary_hops() {
        let s = Summary::new(4, vec![0, 0, 1, 2], &[(0, 0, 1.0), (1, 2, 1.0)]);
        let hops = hops_summary(&s, 0);
        assert_eq!(hops[0], 0);
        assert_eq!(hops[1], 1); // via self-loop
        assert_eq!(hops[2], u32::MAX);
        assert_eq!(hops[3], u32::MAX);
    }

    #[test]
    fn rwr_summary_is_distribution() {
        let g = barabasi_albert(120, 3, 4);
        let s = pgs_core::summarize(&g, &[0], 0.5 * g.size_bits(), &Default::default());
        let r = rwr_summary(&s, 0, 0.05);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn weighted_summary_changes_scores() {
        // Two superedges with different weights from {0}: walker prefers
        // the heavier edge.
        let s = Summary::new(3, vec![0, 1, 2], &[(0, 1, 3.0), (0, 2, 1.0)]);
        let r = rwr_summary(&s, 0, 0.05);
        assert!(
            r[1] > r[2],
            "heavier superedge should attract more probability: {r:?}"
        );
    }
}
