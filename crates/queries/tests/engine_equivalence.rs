//! Property suite: on random summaries, every [`QueryEngine`] query —
//! serial and batched at 1/2/8 threads — agrees with the independent
//! per-node reference implementations in [`pgs_queries::reference`].
//!
//! Two tiers of agreement:
//!
//! * **Bitwise** for everything whose computation the engine performs
//!   with the identical operation sequence: HOP, neighbors, degrees,
//!   clustering coefficients — and for *every* query type, batched
//!   results vs the serial loop at any thread count (each query is a
//!   pure function of the plan, so fan-out order cannot change a bit).
//! * **`≤ 1e-8` per element** for the iterative float solvers (RWR,
//!   PHP, PageRank, eigenvector centrality) against the per-node
//!   reference: the engine collapses per-node state to per-supernode
//!   state, which reorders floating-point summations; the trajectories
//!   are mathematically identical, so only rounding (plus at most one
//!   extra/fewer iteration at the convergence boundary) can differ.

use proptest::prelude::*;

use pgs_core::exec::Exec;
use pgs_core::Summary;
use pgs_queries::{reference, QueryEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random summary: a random partition of `n` nodes into at
/// most `k` supernodes with a random (possibly weighted, self-loops
/// allowed) superedge set. Deterministic in the seed.
fn random_summary(n: usize, k: usize, weighted: bool, seed: u64) -> Summary {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = k.clamp(1, n);
    let assignment: Vec<u32> = (0..n).map(|_| rng.random_range(0..k as u32)).collect();
    let mut present: Vec<u32> = assignment.clone();
    present.sort_unstable();
    present.dedup();
    let max_edges = present.len() * (present.len() + 1) / 2;
    let target = rng.random_range(0..=max_edges.min(3 * present.len()));
    let superedges: Vec<(u32, u32, f32)> = (0..target)
        .map(|_| {
            let a = present[rng.random_range(0..present.len())];
            let b = present[rng.random_range(0..present.len())];
            let w = if weighted {
                rng.random_range(1..=8) as f32 * 0.5
            } else {
                1.0
            };
            (a, b, w)
        })
        .collect();
    Summary::new(n, assignment, &superedges)
}

/// A handful of distinct query nodes spread across the id space.
fn query_nodes(n: usize) -> Vec<u32> {
    let mut qs: Vec<u32> = [0, n / 3, n / 2, 2 * n / 3, n - 1]
        .iter()
        .map(|&v| v as u32)
        .collect();
    qs.sort_unstable();
    qs.dedup();
    qs
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() < tol,
            "{what} mismatch at {i}: {x} vs {y} (|Δ| = {})",
            (x - y).abs()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_reference_on_random_summaries(
        n in 1usize..48,
        k in 1usize..24,
        weighted in proptest::arbitrary::any::<bool>(),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let s = random_summary(n, k, weighted, seed);
        let e = QueryEngine::new(&s);
        let qs = query_nodes(n);

        // Integer / combinatorial queries: bitwise against the reference.
        for &q in &qs {
            prop_assert_eq!(e.hops(q), reference::hops_summary(&s, q));
            prop_assert_eq!(e.neighbors(q), pgs_queries::get_neighbors(&s, q));
            let cc = e.clustering_coefficient(q);
            let cc_ref = pgs_queries::clustering_coefficient_summary(&s, q);
            prop_assert_eq!(cc.to_bits(), cc_ref.to_bits());
        }
        prop_assert_eq!(e.degrees(), reference::degrees_summary(&s));

        // Iterative float solvers: collapsed state vs per-node state.
        for &q in &qs {
            assert_close(&e.rwr(q, 0.05), &reference::rwr_summary(&s, q, 0.05), 1e-8, "rwr");
            assert_close(&e.php(q, 0.95), &reference::php_summary(&s, q, 0.95), 1e-8, "php");
        }
        assert_close(&e.pagerank(0.85), &reference::pagerank_summary(&s, 0.85), 1e-8, "pagerank");
        assert_close(
            &e.eigenvector_centrality(40),
            &reference::eigenvector_centrality_summary(&s, 40),
            1e-6,
            "eigenvector",
        );
    }

    #[test]
    fn batched_bitwise_identical_to_serial_at_any_thread_count(
        n in 2usize..48,
        k in 1usize..16,
        weighted in proptest::arbitrary::any::<bool>(),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let s = random_summary(n, k, weighted, seed);
        let e = QueryEngine::new(&s);
        let qs = query_nodes(n);

        let serial_hops: Vec<Vec<u32>> = qs.iter().map(|&q| e.hops(q)).collect();
        let serial_rwr: Vec<Vec<u64>> = qs.iter().map(|&q| bits(&e.rwr(q, 0.05))).collect();
        let serial_php: Vec<Vec<u64>> = qs.iter().map(|&q| bits(&e.php(q, 0.95))).collect();
        let serial_nbrs: Vec<Vec<u32>> = qs.iter().map(|&q| e.neighbors(q)).collect();

        for threads in [1usize, 2, 8] {
            let exec = Exec::new(threads);
            prop_assert_eq!(&e.hops_batch(&qs, &exec), &serial_hops);
            let batch_rwr: Vec<Vec<u64>> = e
                .rwr_batch(&qs, 0.05, &exec)
                .iter()
                .map(|v| bits(v))
                .collect();
            prop_assert_eq!(&batch_rwr, &serial_rwr);
            let batch_php: Vec<Vec<u64>> = e
                .php_batch(&qs, 0.95, &exec)
                .iter()
                .map(|v| bits(v))
                .collect();
            prop_assert_eq!(&batch_php, &serial_php);
            prop_assert_eq!(&e.neighbors_batch(&qs, &exec), &serial_nbrs);
        }
    }

    /// The public free functions wrap the engine, so a throwaway plan
    /// must answer exactly like a long-lived (scratch-recycling) one.
    #[test]
    fn free_functions_bitwise_match_plan_reuse(
        n in 1usize..40,
        k in 1usize..12,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let s = random_summary(n, k, false, seed);
        let e = QueryEngine::new(&s);
        for &q in &query_nodes(n) {
            prop_assert_eq!(
                bits(&e.rwr(q, 0.05)),
                bits(&pgs_queries::rwr_summary(&s, q, 0.05))
            );
            prop_assert_eq!(e.hops(q), pgs_queries::hops_summary(&s, q));
            prop_assert_eq!(
                bits(&e.php(q, 0.95)),
                bits(&pgs_queries::php_summary(&s, q, 0.95))
            );
        }
        prop_assert_eq!(
            bits(&e.pagerank(0.85)),
            bits(&pgs_queries::pagerank_summary(&s, 0.85))
        );
        prop_assert_eq!(e.degrees(), pgs_queries::degrees_summary(&s));
    }
}
