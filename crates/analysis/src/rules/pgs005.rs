//! **PGS005 — error-surface completeness for `PgsError`.**
//!
//! The typed error enum is the contract between the engine and every
//! caller (CLI, service, tests). Two staleness modes creep in as the
//! enum grows: a variant that nothing constructs any more (dead
//! surface area callers still have to match on), and a variant the
//! `Display` impl never renders (so the CLI prints a `Debug` dump or
//! nothing useful at the one moment a user needs the message).
//!
//! This rule runs cross-file: it locates the `enum PgsError`
//! declaration, collects its variants, then scans every file in the
//! set for `PgsError::Variant` occurrences. An occurrence inside the
//! `impl Display for PgsError` body counts as *rendered*; one anywhere
//! else outside the declaration counts as *constructed*. Variants
//! missing either kind are reported at their declaration line.

use super::{ident, is_punct, FileCtx};
use crate::lexer::Tok;
use crate::report::Finding;
use crate::scope::matching_close;
use std::collections::BTreeMap;
use std::ops::Range;

const ERROR_ENUM: &str = "PgsError";

/// `(variant name, declaration line)` pairs from the enum body.
type Variants = Vec<(String, u32)>;

#[derive(Default)]
struct Evidence {
    constructed: bool,
    rendered: bool,
}

/// Runs PGS005 over the whole file set.
pub fn check(files: &[FileCtx]) -> Vec<Finding> {
    // Locate the enum declaration (first match wins; the workspace has
    // exactly one, fixtures define their own).
    let mut decl: Option<(&FileCtx, Range<usize>, Variants)> = None;
    for f in files {
        if let Some((range, variants)) = enum_decl(f) {
            decl = Some((f, range, variants));
            break;
        }
    }
    let Some((decl_file, decl_range, variants)) = decl else {
        return Vec::new();
    };

    let mut evidence: BTreeMap<String, Evidence> = variants
        .iter()
        .map(|(v, _)| (v.clone(), Evidence::default()))
        .collect();

    for f in files {
        let toks = f.tokens();
        let display = display_impl_range(f);
        for i in 0..toks.len() {
            if f.excluded(i) {
                continue;
            }
            // `PgsError :: Variant`
            if ident(&toks[i]) != Some(ERROR_ENUM) {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
                && toks.get(i + 2).is_some_and(|t| is_punct(t, ':')))
            {
                continue;
            }
            let Some(v) = toks.get(i + 3).and_then(ident) else {
                continue;
            };
            let Some(e) = evidence.get_mut(v) else {
                continue;
            };
            let in_decl = std::ptr::eq(f, decl_file) && decl_range.contains(&i);
            let in_display = display.as_ref().is_some_and(|r| r.contains(&i));
            if in_display {
                e.rendered = true;
            } else if !in_decl {
                e.constructed = true;
            }
        }
    }

    let mut out = Vec::new();
    for (v, line) in &variants {
        let e = &evidence[v];
        if !e.constructed {
            out.push(decl_file.finding(
                "PGS005",
                *line,
                "never-constructed",
                format!(
                    "`{ERROR_ENUM}::{v}` is declared but never constructed — remove the \
                     variant or wire up the error path, or document with \
                     `// pgs-allow: PGS005 <reason>`"
                ),
            ));
        }
        if !e.rendered {
            out.push(decl_file.finding(
                "PGS005",
                *line,
                "never-rendered",
                format!(
                    "`{ERROR_ENUM}::{v}` has no arm in `impl Display for {ERROR_ENUM}` — \
                     users would see no message for this error, or document with \
                     `// pgs-allow: PGS005 <reason>`"
                ),
            ));
        }
    }
    out
}

/// Finds `enum PgsError { ... }`: returns the token range of the body
/// (inside the braces) and the `(variant, decl_line)` list.
fn enum_decl(f: &FileCtx) -> Option<(Range<usize>, Variants)> {
    let toks = f.tokens();
    for i in 0..toks.len() {
        if f.excluded(i) || ident(&toks[i]) != Some("enum") {
            continue;
        }
        if toks.get(i + 1).and_then(ident) != Some(ERROR_ENUM) {
            continue;
        }
        // Skip generics, find the `{`.
        let mut j = i + 2;
        while let Some(t) = toks.get(j) {
            if is_punct(t, '{') {
                break;
            }
            j += 1;
        }
        if j >= toks.len() {
            return None;
        }
        let close = matching_close(toks, j);
        let body = (j + 1)..close;
        let mut variants = Vec::new();
        // Variants are idents at brace/paren/bracket depth 0 within the
        // body that start a variant item (previous significant token is
        // `{` or `,`, skipping `#[...]` attributes).
        let mut depth = 0i64;
        let mut at_start = true;
        let mut k = body.start;
        while k < body.end {
            match &toks[k].tok {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => {
                    depth += 1;
                    at_start = false;
                }
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct(',') if depth == 0 => at_start = true,
                // Attribute on a variant: `#[...]` — skip it.
                Tok::Punct('#')
                    if depth == 0
                        && at_start
                        && toks.get(k + 1).is_some_and(|t| is_punct(t, '[')) =>
                {
                    k = matching_close(toks, k + 1);
                }
                Tok::Ident(w) if depth == 0 && at_start => {
                    variants.push((w.clone(), toks[k].line));
                    at_start = false;
                }
                _ => {}
            }
            k += 1;
        }
        return Some((body, variants));
    }
    None
}

/// Token range of the body of `impl ... Display for PgsError { ... }`.
fn display_impl_range(f: &FileCtx) -> Option<Range<usize>> {
    let toks = f.tokens();
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("impl") {
            continue;
        }
        // Scan the impl header up to its `{`; require both `Display`
        // and `for PgsError` in it.
        let mut j = i + 1;
        let mut saw_display = false;
        let mut saw_target = false;
        while let Some(t) = toks.get(j) {
            match &t.tok {
                Tok::Punct('{') => break,
                Tok::Ident(w) if w == "Display" => saw_display = true,
                Tok::Ident(w) if w == "for" => {
                    // Accept a path ending in PgsError: `for PgsError`,
                    // `for crate::api::PgsError`.
                    let mut k = j + 1;
                    while let Some(t2) = toks.get(k) {
                        match &t2.tok {
                            Tok::Ident(w2) if w2 == ERROR_ENUM => {
                                saw_target = true;
                                break;
                            }
                            Tok::Ident(_) | Tok::Punct(':') => k += 1,
                            _ => break,
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if saw_display && saw_target && j < toks.len() {
            let close = matching_close(toks, j);
            return Some((j + 1)..close);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("t.rs", src, RuleSet::all())
    }

    const DECL: &str = "
        pub enum PgsError {
            EmptyGraph,
            InvalidAlpha(f64),
            TargetOutOfRange { target: usize, num_nodes: usize },
        }
    ";

    #[test]
    fn complete_surface_is_clean() {
        let usage = "
            fn f() -> Result<(), PgsError> { Err(PgsError::EmptyGraph) }
            fn g(a: f64) -> PgsError { PgsError::InvalidAlpha(a) }
            fn h() -> PgsError { PgsError::TargetOutOfRange { target: 1, num_nodes: 0 } }
            impl std::fmt::Display for PgsError {
                fn fmt(&self, w: &mut std::fmt::Formatter) -> std::fmt::Result {
                    match self {
                        PgsError::EmptyGraph => write!(w, \"empty\"),
                        PgsError::InvalidAlpha(a) => write!(w, \"alpha {a}\"),
                        PgsError::TargetOutOfRange { .. } => write!(w, \"oob\"),
                    }
                }
            }
        ";
        let files = [ctx(DECL), ctx(usage)];
        assert!(check(&files).is_empty());
    }

    #[test]
    fn unconstructed_and_unrendered_variants_are_flagged() {
        let usage = "
            fn f() -> PgsError { PgsError::EmptyGraph }
            impl std::fmt::Display for PgsError {
                fn fmt(&self, w: &mut std::fmt::Formatter) -> std::fmt::Result {
                    match self {
                        PgsError::EmptyGraph => write!(w, \"empty\"),
                        PgsError::InvalidAlpha(a) => write!(w, \"alpha {a}\"),
                        _ => write!(w, \"other\"),
                    }
                }
            }
        ";
        let files = [ctx(DECL), ctx(usage)];
        let found = check(&files);
        // InvalidAlpha: rendered but not constructed.
        // TargetOutOfRange: neither constructed nor rendered.
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found
            .iter()
            .any(|f| f.category == "never-constructed" && f.message.contains("InvalidAlpha")));
        assert!(found
            .iter()
            .any(|f| f.category == "never-constructed" && f.message.contains("TargetOutOfRange")));
        assert!(found
            .iter()
            .any(|f| f.category == "never-rendered" && f.message.contains("TargetOutOfRange")));
    }

    #[test]
    fn declaration_does_not_count_as_construction() {
        let files = [ctx(DECL)];
        let found = check(&files);
        // All three variants: never constructed + never rendered.
        assert_eq!(found.len(), 6);
    }

    #[test]
    fn test_only_construction_does_not_count() {
        let usage = "
            #[cfg(test)]
            mod tests {
                fn t() { let _ = PgsError::EmptyGraph; }
            }
        ";
        let files = [ctx(DECL), ctx(usage)];
        let found = check(&files);
        assert!(found
            .iter()
            .any(|f| f.category == "never-constructed" && f.message.contains("EmptyGraph")));
    }
}
