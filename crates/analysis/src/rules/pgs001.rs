//! **PGS001 — unordered hash iteration in engine code.**
//!
//! Byte-identical summaries at every thread count (the PR-1 contract)
//! require that nothing on a canonical-output path iterates a
//! `HashMap`/`HashSet` in hash order. This rule tracks every local,
//! parameter, and field declared with a hash-container type in the
//! file and flags iteration over it — `.iter()`, `.keys()`,
//! `.drain()`, `for _ in &map`, and friends.
//!
//! Two idioms are recognized as ordered and exempted automatically:
//! draining into a collection that is sorted in the same or one of the
//! next two statements (`let mut v: Vec<_> = m.drain().collect();
//! v.sort_unstable();`), and collecting into a `BTreeMap`/`BTreeSet`.
//! Everything else needs an inline `// pgs-allow: PGS001 <reason>`.

use super::{ident, is_punct, FileCtx};
use crate::lexer::Tok;
use crate::report::Finding;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];
const SORTERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Runs PGS001 over one engine-crate file.
pub fn check(f: &FileCtx) -> Vec<Finding> {
    let toks = f.tokens();
    let hash_names = hash_typed_names(f);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if f.excluded(i) {
            continue;
        }
        // `name.method(` where name is hash-typed and method iterates.
        if let Some(name) = ident(&toks[i]) {
            if hash_names.contains(&name.to_string())
                && toks.get(i + 1).is_some_and(|t| is_punct(t, '.'))
            {
                if let Some(m) = toks.get(i + 2).and_then(ident) {
                    if ITER_METHODS.contains(&m)
                        && toks.get(i + 3).is_some_and(|t| is_punct(t, '('))
                        && !feeds_ordered_sink(f, i)
                    {
                        out.push(site(f, toks[i].line, name, m));
                    }
                }
            }
            // `for pat in &name {` / `for pat in name {`.
            if name == "in" {
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| is_punct(t, '&'))
                    || toks.get(j).and_then(ident) == Some("mut")
                {
                    j += 1;
                }
                if let Some(n) = toks.get(j).and_then(ident) {
                    if hash_names.contains(&n.to_string())
                        && toks.get(j + 1).is_some_and(|t| is_punct(t, '{'))
                        && !feeds_ordered_sink(f, i)
                    {
                        out.push(site(f, toks[i].line, n, "for-loop"));
                    }
                }
            }
        }
    }
    out
}

fn site(f: &FileCtx, line: u32, name: &str, method: &str) -> Finding {
    f.finding(
        "PGS001",
        line,
        "hash-iteration",
        format!(
            "`{name}` is a hash container; `{method}` visits it in hash order — \
             sort before use on any canonical-output path, or document with \
             `// pgs-allow: PGS001 <reason>`"
        ),
    )
}

/// Collects every identifier declared with a hash-container type:
/// `let x: FxHashMap<..> = ..`, `let x = FxHashMap::default()`,
/// struct fields, and function parameters (`name: &mut FxHashMap<..>`).
fn hash_typed_names(f: &FileCtx) -> Vec<String> {
    let toks = f.tokens();
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Declarations in test/bench code must not poison the name
        // table for the library scan.
        if f.excluded(i) {
            i += 1;
            continue;
        }
        match ident(&toks[i]) {
            // `let [mut] name ... ;` — hash-typed if any hash-type
            // identifier appears in the statement (covers both the
            // annotation and the constructor-call form).
            Some("let") => {
                let mut j = i + 1;
                if toks.get(j).and_then(ident) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = toks.get(j).and_then(ident) {
                    let end = statement_end(f, j);
                    let has_hash = toks[j..end]
                        .iter()
                        .filter_map(ident)
                        .any(|w| HASH_TYPES.contains(&w));
                    if has_hash {
                        names.push(name.to_string());
                    }
                    i = j + 1;
                    continue;
                }
                i = j;
            }
            // `name : <type containing a hash type>` — fields and
            // params. The type region runs to the first `,;=){}` at
            // angle/paren depth zero.
            Some(name)
                if toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
                    && !toks.get(i + 2).is_some_and(|t| is_punct(t, ':')) // skip paths `a::b`
                    && !(i > 0 && is_punct(&toks[i - 1], ':')) =>
            {
                let mut depth = 0i64;
                let mut j = i + 2;
                let mut has_hash = false;
                while let Some(t) = toks.get(j) {
                    match &t.tok {
                        Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct('>') if !(j > 0 && is_punct(&toks[j - 1], '-')) => depth -= 1,
                        Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct(',')
                        | Tok::Punct(';')
                        | Tok::Punct('=')
                        | Tok::Punct('{')
                        | Tok::Punct('}')
                            if depth <= 0 =>
                        {
                            break
                        }
                        Tok::Ident(w) if HASH_TYPES.contains(&w.as_str()) => has_hash = true,
                        _ => {}
                    }
                    if depth < 0 {
                        break;
                    }
                    j += 1;
                }
                if has_hash {
                    names.push(name.to_string());
                }
                i += 1;
                continue;
            }
            _ => i += 1,
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Token index of the start of the statement containing `i` (just
/// past the previous `;`, `{`, or `}` at bracket depth zero, walking
/// backwards).
fn statement_start(f: &FileCtx, i: usize) -> usize {
    let toks = f.tokens();
    let mut depth = 0i64;
    let mut j = i;
    while j > 0 {
        match &toks[j - 1].tok {
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            Tok::Punct(';') if depth == 0 => return j,
            _ => {}
        }
        j -= 1;
    }
    0
}

/// Token index just past the `;` ending the statement containing `i`
/// (bracket-depth aware; a dedenting `}` also ends it).
fn statement_end(f: &FileCtx, i: usize) -> usize {
    let toks = f.tokens();
    let mut depth = 0i64;
    let mut j = i;
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            Tok::Punct(';') if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Whether the iteration at token `i` feeds an ordered sink: a
/// `sort*` call or a `BTreeMap`/`BTreeSet` collect inside the same
/// statement (including a type annotation before `i`) or either of
/// the next two statements.
fn feeds_ordered_sink(f: &FileCtx, i: usize) -> bool {
    let toks = f.tokens();
    let start = statement_start(f, i);
    let mut end = statement_end(f, i);
    for _ in 0..2 {
        end = statement_end(f, end);
    }
    toks[start..end.min(toks.len())]
        .iter()
        .any(|t| match &t.tok {
            Tok::Ident(w) => SORTERS.contains(&w.as_str()) || w == "BTreeMap" || w == "BTreeSet",
            _ => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    fn run(src: &str) -> Vec<Finding> {
        check(&FileCtx::new("t.rs", src, RuleSet::all()))
    }

    #[test]
    fn map_iteration_is_flagged() {
        let src = "
            fn f() {
                let mut m: FxHashMap<u32, f64> = FxHashMap::default();
                for (k, v) in &m { emit(k, v); }
                let s: f64 = m.values().sum();
            }
        ";
        let found = run(src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| f.allowed.is_none()));
    }

    #[test]
    fn sorted_drain_is_exempt() {
        let src = "
            fn f(m: FxHashMap<u32, f64>) {
                let mut v: Vec<_> = m.drain().collect();
                v.sort_unstable_by_key(|e| e.0);
            }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn btree_collect_is_exempt() {
        let src = "
            fn f(m: FxHashMap<u32, f64>) {
                let b: BTreeMap<u32, f64> = m.into_iter().collect();
            }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn vec_iteration_is_not_flagged() {
        let src = "fn f(v: Vec<u32>) { for x in &v {} v.iter().sum::<u32>(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn pragma_documents_the_site() {
        let src = "
            fn f(m: FxHashSet<u32>) {
                // pgs-allow: PGS001 order-insensitive count
                let n = m.iter().count();
            }
        ";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].allowed.as_deref(), Some("order-insensitive count"));
    }

    #[test]
    fn struct_fields_and_params_are_tracked() {
        let src = "
            struct S { spans: FxHashMap<u32, u64> }
            fn f(s: &S, out: &mut FxHashSet<u32>) {
                for k in s.spans.keys() {}
                out.iter().next();
            }
        ";
        assert_eq!(run(src).len(), 2);
    }
}
