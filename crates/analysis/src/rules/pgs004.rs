//! **PGS004 — panic freedom in library code.**
//!
//! A panic in the serving layer is a wedged worker (and, pre-PR-5, a
//! dead pool); a panic in the CLI is a user-facing crash on malformed
//! input. This rule flags `.unwrap()` / `.expect(...)` and the
//! `panic!`-family macros in non-test library code.
//!
//! One category is policy-exempt rather than pragma-exempt: an
//! `unwrap`/`expect` applied directly to `lock()` / `read()` /
//! `write()` / `wait()` / `wait_timeout()` propagates mutex or condvar
//! *poisoning* — another thread already panicked while holding the
//! lock, the protected state is suspect, and aborting is the
//! documented policy (DESIGN.md §13). Those sites are reported as
//! documented `poisoning` findings, never as violations.

use super::{ident, is_punct, FileCtx};
use crate::lexer::Tok;
use crate::report::Finding;

/// Receivers whose `Result` encodes lock poisoning.
const POISON_SOURCES: &[&str] = &["lock", "read", "write", "wait", "wait_timeout"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs PGS004 over one library file.
pub fn check(f: &FileCtx) -> Vec<Finding> {
    let toks = f.tokens();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if f.excluded(i) {
            continue;
        }
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        // `.unwrap(` / `.expect(`.
        if (name == "unwrap" || name == "expect")
            && i >= 1
            && is_punct(&toks[i - 1], '.')
            && toks.get(i + 1).is_some_and(|t| is_punct(t, '('))
        {
            if let Some(source) = poison_source(f, i - 1) {
                out.push(Finding {
                    code: "PGS004",
                    file: f.rel.clone(),
                    line: toks[i].line,
                    category: "poisoning",
                    message: format!(
                        "`{source}().{name}()` propagates lock poisoning (documented \
                         abort-on-poison policy)"
                    ),
                    allowed: Some("poisoning propagation (policy, DESIGN.md §13)".to_string()),
                });
            } else {
                out.push(f.finding(
                    "PGS004",
                    toks[i].line,
                    "panic-site",
                    format!(
                        "`.{name}()` can panic in library code — propagate a typed error \
                         (`PgsError`/`Result`) or document with `// pgs-allow: PGS004 <reason>`"
                    ),
                ));
            }
        }
        // `panic!(` / `unreachable!(` / `todo!(` / `unimplemented!(`.
        if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|t| is_punct(t, '!')) {
            out.push(f.finding(
                "PGS004",
                toks[i].line,
                "panic-macro",
                format!(
                    "`{name}!` aborts the thread in library code — return a typed error, \
                     or document with `// pgs-allow: PGS004 <reason>`"
                ),
            ));
        }
    }
    out
}

/// If the expression before the `.` at token `dot` is a call to a
/// poison-carrying method (`...lock()`, `...wait(x)`, ...), returns
/// that method's name.
fn poison_source(f: &FileCtx, dot: usize) -> Option<&'static str> {
    let toks = f.tokens();
    // Walk back over the `(...)` argument list, if any.
    let close = dot.checked_sub(1)?;
    if !is_punct(&toks[close], ')') {
        return None;
    }
    let mut depth = 0i64;
    let mut j = close;
    loop {
        match &toks[j].tok {
            Tok::Punct(')') => depth += 1,
            Tok::Punct('(') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j = j.checked_sub(1)?;
    }
    let callee = j.checked_sub(1).and_then(|p| toks.get(p)).and_then(ident)?;
    POISON_SOURCES.iter().find(|&&s| s == callee).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    fn run(src: &str) -> Vec<Finding> {
        check(&FileCtx::new("t.rs", src, RuleSet::all()))
    }

    #[test]
    fn unwrap_and_panic_macros_are_violations() {
        let src = "
            fn f(x: Option<u32>) -> u32 {
                let y = x.unwrap();
                let z = compute().expect(\"always\");
                if y > z { panic!(\"boom\"); }
                unreachable!()
            }
        ";
        let found = run(src);
        assert_eq!(found.len(), 4, "{found:?}");
        assert!(found.iter().all(|f| f.allowed.is_none()));
    }

    #[test]
    fn lock_unwrap_is_policy_exempt() {
        let src = "
            fn f(m: &Mutex<u32>, cv: &Condvar) {
                let g = m.lock().unwrap();
                let g2 = cv.wait(g).unwrap();
                let (g3, _) = cv.wait_timeout(g2, d).unwrap();
                let r = rw.read().unwrap();
                let w = rw.write().expect(\"poisoned\");
            }
        ";
        let found = run(src);
        assert_eq!(found.len(), 5);
        assert!(found.iter().all(|f| f.category == "poisoning"));
        assert!(found.iter().all(|f| f.allowed.is_some()));
    }

    #[test]
    fn unwrap_or_is_not_a_panic_site() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); panic!(); }
            }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn pragma_documents_an_unwrap() {
        let src = "
            fn f() {
                // pgs-allow: PGS004 length checked two lines above
                let b = slice.try_into().unwrap();
            }
        ";
        let found = run(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].allowed.is_some());
    }
}
