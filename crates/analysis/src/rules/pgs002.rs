//! **PGS002 — RNG seeding discipline in engine code.**
//!
//! Every random draw in the engines must flow from the run's seed
//! (`iteration_seed(cfg.seed, t)` and the seeded constructors), or a
//! checkpoint-resumed run diverges from the uninterrupted one and the
//! fixed-seed determinism tests stop meaning anything. This rule flags
//! entropy-sourced RNG construction: `thread_rng`, `from_entropy`,
//! `from_os_rng`, `OsRng`, and the free `rand::random`.

use super::{ident, is_punct, FileCtx};
use crate::report::Finding;

const ENTROPY_SOURCES: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "OsRng"];

/// Runs PGS002 over one engine-crate file.
pub fn check(f: &FileCtx) -> Vec<Finding> {
    let toks = f.tokens();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if f.excluded(i) {
            continue;
        }
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        let flagged = ENTROPY_SOURCES.contains(&name)
            || (name == "random"
                && i >= 3
                && ident(&toks[i - 3]) == Some("rand")
                && is_punct(&toks[i - 2], ':')
                && is_punct(&toks[i - 1], ':'));
        if flagged {
            out.push(f.finding(
                "PGS002",
                toks[i].line,
                "entropy-seeded-rng",
                format!(
                    "`{name}` draws entropy outside the seed chain — derive every engine \
                     RNG from `iteration_seed`/seeded constructors so runs replay \
                     bit-identically, or document with `// pgs-allow: PGS002 <reason>`"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    fn run(src: &str) -> Vec<Finding> {
        check(&FileCtx::new("t.rs", src, RuleSet::all()))
    }

    #[test]
    fn entropy_constructors_are_flagged() {
        let src = "
            fn f() {
                let a = rand::thread_rng();
                let b = StdRng::from_entropy();
                let c: u64 = rand::random();
            }
        ";
        assert_eq!(run(src).len(), 3);
    }

    #[test]
    fn seeded_construction_is_clean() {
        let src = "
            fn f(seed: u64, t: u64) {
                let rng = StdRng::seed_from_u64(iteration_seed(seed, t));
            }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_ignored() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn noise() { let r = rand::thread_rng(); }
            }
        ";
        assert!(run(src).is_empty());
    }
}
