//! **PGS003 — lock discipline in the serving layer.**
//!
//! `crates/serve` holds half a dozen mutexes (scheduler, job state,
//! caches, journal records); a single out-of-order nesting is a
//! latent deadlock that no example-based test reliably reproduces —
//! the PR-8 pickup-window race was exactly this class. This rule
//! extracts the `.lock()` nesting graph per function with a lexical
//! hold model and checks every observed nesting edge against the
//! declared manifest (`// pgs-lock-order: a -> b -> c` comments,
//! chained pairwise; legality is the transitive closure).
//!
//! The hold model: a guard bound by `let` (`let g = m.lock().unwrap();`
//! — nothing after the unwrap, so the guard itself is what `let`
//! binds) lives to the end of its enclosing block or an explicit
//! `drop(guard)`; when further calls follow
//! (`let v = m.lock().unwrap().get(k);` binds the *result*) the guard
//! is a temporary and dies at the statement end; `match`/`for`/
//! `if let` scrutinee temporaries live through the attached block
//! (edition 2021 semantics). Lock sites are named by the field the
//! guard came from (`inner.sched.lock()` → `sched`), which
//! deliberately merges same-named mutexes — a conservative
//! over-approximation.

use std::collections::{BTreeMap, BTreeSet};

use super::{ident, is_punct, FileCtx};
use crate::lexer::Tok;
use crate::report::Finding;
use crate::scope::FnSpan;

/// One observed nesting: `inner` acquired while `outer` was held.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct NestEdge {
    /// The lock already held.
    pub outer: String,
    /// The lock being acquired.
    pub inner: String,
    /// File and line of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
    /// Function the nesting occurs in.
    pub function: String,
}

/// Runs PGS003 across all serve-flagged files.
pub fn check(files: &[FileCtx]) -> Vec<Finding> {
    let serve: Vec<&FileCtx> = files.iter().filter(|f| f.rules.lock_discipline).collect();
    if serve.is_empty() {
        return Vec::new();
    }

    // Declared manifest: chains decompose into pairwise edges.
    let mut declared: BTreeSet<(String, String)> = BTreeSet::new();
    let mut decl_sites: Vec<(&FileCtx, u32)> = Vec::new();
    for f in &serve {
        for decl in &f.lexed.lock_orders {
            decl_sites.push((f, decl.line));
            for pair in decl.chain.windows(2) {
                declared.insert((pair[0].clone(), pair[1].clone()));
            }
        }
    }

    let mut findings = Vec::new();

    // The declared graph itself must be a partial order (no cycles).
    if let Some(cycle) = find_cycle(&declared) {
        let (f, line) = decl_sites[0];
        findings.push(f.finding(
            "PGS003",
            line,
            "lock-cycle",
            format!(
                "declared lock-order manifest contains a cycle through `{cycle}` — \
                 a cyclic order cannot prove deadlock freedom"
            ),
        ));
    }

    let legal = transitive_closure(&declared);
    for f in &serve {
        for span in &f.scopes.functions {
            for edge in nesting_edges(f, span) {
                if edge.outer == edge.inner {
                    findings.push(f.finding(
                        "PGS003",
                        edge.line,
                        "lock-self",
                        format!(
                            "`{}` re-locks `{}` while a guard for it may still be live \
                             (self-deadlock)",
                            edge.function, edge.inner
                        ),
                    ));
                } else if !legal.contains(&(edge.outer.clone(), edge.inner.clone())) {
                    findings.push(f.finding(
                        "PGS003",
                        edge.line,
                        "lock-order",
                        format!(
                            "`{}` acquires `{}` while holding `{}`, which the \
                             lock-order manifest does not allow — declare \
                             `// pgs-lock-order: {} -> {}` (if globally consistent) \
                             or restructure",
                            edge.function, edge.inner, edge.outer, edge.outer, edge.inner
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// How long a held guard lives.
#[derive(Clone, Debug)]
enum Until {
    /// To the end of the current statement.
    Stmt,
    /// To the close of the enclosing block (a `let`-bound guard at
    /// brace depth `d` dies when depth drops *below* `d`).
    Block(i64),
    /// To the close of the attached block (a `match`/`for`/`if let`
    /// scrutinee at depth `d` dies when depth returns *to* `d`).
    Scrutinee(i64),
}

#[derive(Clone, Debug)]
struct Held {
    name: String,
    var: Option<String>,
    until: Until,
}

/// Extracts the nesting edges of one function body.
pub fn nesting_edges(f: &FileCtx, span: &FnSpan) -> Vec<NestEdge> {
    let toks = f.tokens();
    let body = &toks[span.body.clone()];
    let mut held: Vec<Held> = Vec::new();
    let mut edges = Vec::new();

    let mut depth: i64 = 0; // brace depth inside the body
    let mut paren: i64 = 0; // paren/bracket depth inside the statement
    let mut stmt_start = true;
    let mut stmt_is_let = false;
    let mut stmt_extends_block = false; // match / for / if-let scrutinees
    let mut let_var: Option<String> = None;
    let mut seen_kw: Option<String> = None; // last of if/while, for `if let`

    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        if stmt_start {
            if let Some(w) = ident(t) {
                match w {
                    "let" => {
                        stmt_is_let = true;
                        let mut j = i + 1;
                        if body.get(j).and_then(ident) == Some("mut") {
                            j += 1;
                        }
                        let_var = body.get(j).and_then(ident).map(String::from);
                    }
                    "match" | "for" => stmt_extends_block = true,
                    _ => {}
                }
                stmt_start = false;
            }
        }
        match &t.tok {
            Tok::Ident(w) if w == "if" || w == "while" => {
                seen_kw = Some(w.clone());
            }
            Tok::Ident(w) if w == "let" && seen_kw.is_some() => {
                // `if let` / `while let`: scrutinee temporaries live
                // through the block in edition 2021.
                stmt_extends_block = true;
            }
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct('{') => {
                depth += 1;
                // Entering a block ends plain-statement temporaries
                // (if/while conditions drop before the body) unless
                // the statement kind extends them.
                if !stmt_extends_block && !stmt_is_let {
                    held.retain(|h| !matches!(h.until, Until::Stmt));
                }
                // The statement's hold decisions are already taken;
                // reset so the block's own statements start clean.
                stmt_start = true;
                stmt_is_let = false;
                stmt_extends_block = false;
                let_var = None;
                paren = 0;
                seen_kw = None;
            }
            Tok::Punct('}') => {
                depth -= 1;
                held.retain(|h| match h.until {
                    Until::Block(d) => d <= depth,
                    Until::Scrutinee(d) => d < depth,
                    Until::Stmt => false,
                });
                stmt_start = true;
                stmt_is_let = false;
                stmt_extends_block = false;
                let_var = None;
                paren = 0;
                seen_kw = None;
            }
            Tok::Punct(';') if paren <= 0 => {
                held.retain(|h| !matches!(h.until, Until::Stmt));
                stmt_start = true;
                stmt_is_let = false;
                stmt_extends_block = false;
                let_var = None;
                seen_kw = None;
            }
            // `drop(guard)` releases a named guard early.
            Tok::Ident(w)
                if w == "drop"
                    && body.get(i + 1).is_some_and(|t| is_punct(t, '('))
                    && body.get(i + 3).is_some_and(|t| is_punct(t, ')')) =>
            {
                if let Some(v) = body.get(i + 2).and_then(ident) {
                    held.retain(|h| h.var.as_deref() != Some(v));
                }
            }
            // `<name>.lock()` — acquisition.
            Tok::Punct('.')
                if body.get(i + 1).and_then(ident) == Some("lock")
                    && body.get(i + 2).is_some_and(|t| is_punct(t, '('))
                    && body.get(i + 3).is_some_and(|t| is_punct(t, ')')) =>
            {
                if let Some(name) = i.checked_sub(1).and_then(|p| body.get(p)).and_then(ident) {
                    let line = body[i + 1].line;
                    for h in &held {
                        edges.push(NestEdge {
                            outer: h.name.clone(),
                            inner: name.to_string(),
                            file: f.rel.clone(),
                            line,
                            function: span.name.clone(),
                        });
                    }
                    let bound = stmt_is_let && paren == 0 && guard_bound(body, i + 4);
                    let until = if bound {
                        Until::Block(depth)
                    } else if stmt_extends_block {
                        Until::Scrutinee(depth)
                    } else {
                        Until::Stmt
                    };
                    held.push(Held {
                        name: name.to_string(),
                        var: if bound { let_var.clone() } else { None },
                        until,
                    });
                    i += 4;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    edges.sort();
    edges.dedup();
    edges
}

/// Whether the value produced just past `lock()` (token `j`), after
/// at most one `.unwrap()`/`.expect(..)` adapter, is what the `let`
/// binds — the statement ends right there, so the guard lives in the
/// binding. If further calls follow (`.lookup(..)`, field access),
/// the `let` binds that call's result and the guard is a temporary.
fn guard_bound(body: &[crate::lexer::Token], mut j: usize) -> bool {
    if body.get(j).is_some_and(|t| is_punct(t, '.')) {
        let adapter = body.get(j + 1).and_then(ident);
        if matches!(adapter, Some("unwrap") | Some("expect"))
            && body.get(j + 2).is_some_and(|t| is_punct(t, '('))
        {
            let mut depth = 0i64;
            let mut k = j + 2;
            while let Some(t) = body.get(k) {
                match &t.tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
    }
    body.get(j).is_none_or(|t| is_punct(t, ';'))
}

/// Transitive closure of the declared edge set.
fn transitive_closure(edges: &BTreeSet<(String, String)>) -> BTreeSet<(String, String)> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (a, b) in edges {
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut closure = edges.clone();
    // Floyd-Warshall over the (small) lock-name universe.
    for k in &nodes {
        for a in &nodes {
            for b in &nodes {
                if closure.contains(&((*a).clone(), (*k).clone()))
                    && closure.contains(&((*k).clone(), (*b).clone()))
                {
                    closure.insert(((*a).clone(), (*b).clone()));
                }
            }
        }
    }
    closure
}

/// Any node reachable from itself in the declared graph.
fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<String> {
    let closure = transitive_closure(edges);
    let mut adj: BTreeMap<&str, ()> = BTreeMap::new();
    for (a, b) in &closure {
        if a == b {
            adj.insert(a, ());
        }
    }
    adj.keys().next().map(|s| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSet;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("serve.rs", src, RuleSet::all())
    }

    fn edges(src: &str) -> Vec<(String, String)> {
        let f = ctx(src);
        let mut out = Vec::new();
        for span in &f.scopes.functions {
            for e in nesting_edges(&f, span) {
                out.push((e.outer, e.inner));
            }
        }
        out
    }

    #[test]
    fn let_bound_guard_holds_to_block_end() {
        let src = "
            fn f(inner: &Inner) {
                let mut sched = inner.sched.lock().unwrap();
                let st = job.state.lock().unwrap();
            }
        ";
        assert_eq!(edges(src), vec![("sched".into(), "state".into())]);
    }

    #[test]
    fn temporary_guard_releases_at_statement_end() {
        let src = "
            fn f(inner: &Inner) {
                inner.sched.lock().unwrap().queued += 1;
                inner.state.lock().unwrap().poll();
            }
        ";
        assert!(edges(src).is_empty());
    }

    #[test]
    fn let_bound_result_releases_the_temporary_guard() {
        // `let hit = cache.lock().unwrap().lookup(..);` binds the
        // lookup result, not the guard — no hold past the `;`.
        let src = "
            fn f(inner: &Inner) {
                let hit = inner.cache.lock().unwrap().lookup(&key, epoch);
                inner.cache.lock().unwrap().insert(key, w, epoch);
            }
        ";
        assert!(edges(src).is_empty());
    }

    #[test]
    fn dropped_guard_stops_nesting() {
        let src = "
            fn f(inner: &Inner) {
                let sched = inner.sched.lock().unwrap();
                drop(sched);
                let st = inner.state.lock().unwrap();
            }
        ";
        assert!(edges(src).is_empty());
    }

    #[test]
    fn for_loop_scrutinee_guard_spans_the_body() {
        let src = "
            fn f(inner: &Inner) {
                for job in inner.running.lock().unwrap().values() {
                    let st = job.state.lock().unwrap();
                }
            }
        ";
        assert_eq!(edges(src), vec![("running".into(), "state".into())]);
    }

    #[test]
    fn manifest_allows_declared_and_transitive_edges() {
        let src = "
            // pgs-lock-order: sched -> running -> state
            fn f(inner: &Inner) {
                let s = inner.sched.lock().unwrap();
                let st = inner.state.lock().unwrap();
            }
        ";
        let findings = check(&[ctx(src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn undeclared_edge_is_a_violation() {
        let src = "
            // pgs-lock-order: sched -> state
            fn f(inner: &Inner) {
                let st = inner.state.lock().unwrap();
                let s = inner.sched.lock().unwrap();
            }
        ";
        let findings = check(&[ctx(src)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].category, "lock-order");
        assert!(findings[0].allowed.is_none());
    }

    #[test]
    fn cyclic_manifest_is_rejected() {
        let src = "
            // pgs-lock-order: a -> b
            // pgs-lock-order: b -> a
            fn f() {}
        ";
        let findings = check(&[ctx(src)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].category, "lock-cycle");
    }

    #[test]
    fn self_nesting_is_flagged() {
        let src = "
            fn f(a: &T, b: &T) {
                let g1 = a.state.lock().unwrap();
                let g2 = b.state.lock().unwrap();
            }
        ";
        let findings = check(&[ctx(src)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].category, "lock-self");
    }
}
