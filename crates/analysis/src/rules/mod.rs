//! The rule set: PGS001-PGS005.
//!
//! Each rule is a pure function over [`FileCtx`] slices — no
//! filesystem access, so the self-tests drive them straight from
//! string fixtures. Rules report *every* site they match; the pragma
//! layer (`FileCtx::finding`) downgrades documented sites to
//! `allowed` findings, and the driver fails only on undocumented ones.

pub mod pgs001;
pub mod pgs002;
pub mod pgs003;
pub mod pgs004;
pub mod pgs005;

use crate::lexer::{self, Lexed, Tok, Token};
use crate::report::Finding;
use crate::scope::{self, Scopes};

/// Which rules apply to a file (derived from its crate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// PGS001 — unordered hash iteration (engine crates).
    pub hash_iteration: bool,
    /// PGS002 — RNG seeding discipline (engine crates).
    pub rng_discipline: bool,
    /// PGS003 — lock ordering (`crates/serve`).
    pub lock_discipline: bool,
    /// PGS004 — panic freedom (`core`, `serve`, `cli`).
    pub panic_freedom: bool,
}

impl RuleSet {
    /// Every rule on — used for single-file scans and fixtures.
    pub fn all() -> Self {
        RuleSet {
            hash_iteration: true,
            rng_discipline: true,
            lock_discipline: true,
            panic_freedom: true,
        }
    }
}

/// One source file, lexed and scoped, ready for the rules.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path (used in findings).
    pub rel: String,
    /// Rules that apply here.
    pub rules: RuleSet,
    /// Token stream + pragmas.
    pub lexed: Lexed,
    /// Exclusion flags and function spans.
    pub scopes: Scopes,
}

impl FileCtx {
    /// Lexes and scopes `text` under path `rel` with `rules` enabled.
    pub fn new(rel: &str, text: &str, rules: RuleSet) -> Self {
        let lexed = lexer::lex(text);
        let scopes = scope::scopes(&lexed);
        FileCtx {
            rel: rel.to_string(),
            rules,
            lexed,
            scopes,
        }
    }

    /// Tokens with their exclusion flags.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Whether token `i` sits in test/bench-only code.
    pub fn excluded(&self, i: usize) -> bool {
        self.scopes.excluded.get(i).copied().unwrap_or(false)
    }

    /// Builds a finding at `line`, resolving pragma coverage.
    pub fn finding(
        &self,
        code: &'static str,
        line: u32,
        category: &'static str,
        message: String,
    ) -> Finding {
        Finding {
            code,
            file: self.rel.clone(),
            line,
            category,
            message,
            allowed: self.lexed.allowance(code, line).map(String::from),
        }
    }
}

/// Runs every rule over the file set and returns all findings.
pub fn check_all(files: &[FileCtx]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in files {
        if f.rules.hash_iteration {
            findings.extend(pgs001::check(f));
        }
        if f.rules.rng_discipline {
            findings.extend(pgs002::check(f));
        }
        if f.rules.panic_freedom {
            findings.extend(pgs004::check(f));
        }
    }
    findings.extend(pgs003::check(files));
    findings.extend(pgs005::check(files));
    findings
}

/// Identifier text of a token, if it is one.
pub(crate) fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Whether token `t` is the punctuation `c`.
pub(crate) fn is_punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}
