//! `pgs-analysis` — invariant-checking static analysis for the
//! PeGaSus workspace.
//!
//! The engine's headline guarantees — byte-identical summaries at any
//! thread count, deterministic replay from a seed, a serving layer
//! that degrades instead of dying — are invariants the compiler cannot
//! see. This crate checks them lexically, with zero dependencies
//! beyond `std`, so the gate runs anywhere the toolchain does:
//!
//! * **PGS001** — unordered `HashMap`/`HashSet` iteration in engine
//!   crates (determinism).
//! * **PGS002** — entropy-seeded RNG construction in engine crates
//!   (replayability).
//! * **PGS003** — lock acquisition order in `crates/serve` against the
//!   declared `// pgs-lock-order:` manifest (deadlock freedom).
//! * **PGS004** — `unwrap`/`expect`/`panic!` in library code, with
//!   lock-poisoning propagation policy-exempt (panic freedom).
//! * **PGS005** — `PgsError` variants that are never constructed or
//!   never rendered by `Display` (error-surface completeness).
//!
//! Sites that are intentional carry an inline
//! `// pgs-allow: PGS00X <reason>` pragma on the same or preceding
//! line; the reason is mandatory and is echoed in reports. The binary
//! exits non-zero only on *undocumented* violations.
//!
//! The pass is lexical, not semantic: it lexes real Rust (nested
//! comments, raw strings, lifetimes vs. char literals) and tracks
//! brace structure, but does not resolve types or names. Known
//! approximations are listed in each rule's module docs and in
//! DESIGN.md §13.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod workspace;

use report::{Finding, Report};
use rules::{FileCtx, RuleSet};
use std::path::Path;

/// Checks the whole workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace::load(root)?;
    Ok(Report::new(rules::check_all(&files)))
}

/// Checks a set of standalone files with every rule enabled — the
/// fixture / ad-hoc mode (`--file`).
pub fn check_files(named: &[(String, String)]) -> Report {
    let files: Vec<FileCtx> = named
        .iter()
        .map(|(rel, text)| FileCtx::new(rel, text, RuleSet::all()))
        .collect();
    Report::new(rules::check_all(&files))
}

/// Convenience for tests: all findings (documented and not) for one
/// source string under every rule.
pub fn check_source(rel: &str, text: &str) -> Vec<Finding> {
    check_files(&[(rel.to_string(), text.to_string())])
        .findings
        .clone()
}
