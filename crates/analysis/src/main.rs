//! CLI driver for the workspace invariant checker.
//!
//! ```text
//! pgs-analysis check [--root DIR] [--format human|json] [--file F]...
//! ```
//!
//! Exit codes: `0` clean (or only documented findings), `1`
//! undocumented violations, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pgs-analysis: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}` (expected `check`)")),
        None => {
            return Err(
                "usage: pgs-analysis check [--root DIR] [--format human|json] [--file F]...".into(),
            )
        }
    }

    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut files: Vec<PathBuf> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a directory")?,
                ));
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!("--format expects `human` or `json`, got {other:?}"))
                    }
                };
            }
            "--file" => {
                files.push(PathBuf::from(args.next().ok_or("--file requires a path")?));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let report = if files.is_empty() {
        let root = match root {
            Some(r) => r,
            None => find_workspace_root()?,
        };
        pgs_analysis::check_workspace(&root).map_err(|e| format!("scanning workspace: {e}"))?
    } else {
        let mut named = Vec::new();
        for path in &files {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            named.push((path.to_string_lossy().into_owned(), text));
        }
        pgs_analysis::check_files(&named)
    };

    match format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => println!("{}", report.render_json()),
    }
    Ok(if report.violation_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// Walks up from the current directory to the workspace root (the
/// first ancestor whose `Cargo.toml` contains a `[workspace]` table).
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root explicitly)"
                .into());
        }
    }
}
