//! A comment- and string-aware Rust tokenizer.
//!
//! The analyzer never needs a full parse: every rule (PGS001-PGS005)
//! works from an identifier/punctuation stream plus brace structure.
//! What it *cannot* tolerate is a `.unwrap()` inside a string literal
//! or a doc comment being reported as a panic site, so the lexer's one
//! job is to classify those regions correctly — and to never panic,
//! whatever bytes it is fed (pinned by a proptest).
//!
//! Comments are not discarded silently: `// pgs-allow: <CODE> <reason>`
//! suppression pragmas and `// pgs-lock-order: a -> b -> c` manifest
//! declarations are collected during the scan (see [`Pragma`] and
//! [`LockOrderDecl`]).

/// One lexical token kind. Literal payloads are dropped — no rule
/// inspects string contents — but identifiers keep their text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `let`, `unwrap`, ...).
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any string-ish literal: `"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    Str,
    /// A character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A numeric literal.
    Num,
    /// Single punctuation character (`.`, `{`, `(`, `;`, `#`, ...).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A `// pgs-allow: PGS00X[,PGS00Y] <reason>` suppression pragma.
///
/// A pragma documents a *reviewed* violation: the reason is mandatory
/// (an empty reason leaves the violation undocumented) and the pragma
/// covers findings of the listed codes on its own line and on the line
/// directly below it (so it can ride at end-of-line or stand above the
/// statement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// Rule codes it suppresses (e.g. `"PGS004"`).
    pub codes: Vec<String>,
    /// The mandatory human reason. Empty = malformed pragma (reported
    /// by the driver as an undocumented violation of the rule itself).
    pub reason: String,
}

/// A `// pgs-lock-order: a -> b -> c` manifest declaration: while
/// holding lock `a` it is legal to acquire `b`, and while holding `b`,
/// `c` (edges are chained pairwise; the full order is the transitive
/// closure over all declarations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockOrderDecl {
    /// 1-based line of the declaration.
    pub line: u32,
    /// The chain of lock names, outermost first.
    pub chain: Vec<String>,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub tokens: Vec<Token>,
    /// Every suppression pragma found in comments.
    pub pragmas: Vec<Pragma>,
    /// Every lock-order manifest declaration found in comments.
    pub lock_orders: Vec<LockOrderDecl>,
}

impl Lexed {
    /// Whether a finding of `code` on `line` is covered by a pragma
    /// (same line or the line directly above) with a non-empty reason.
    /// Returns the reason when covered.
    pub fn allowance(&self, code: &str, line: u32) -> Option<&str> {
        self.pragmas.iter().find_map(|p| {
            let in_range = p.line == line || p.line + 1 == line;
            let named = p.codes.iter().any(|c| c == code);
            (in_range && named && !p.reason.is_empty()).then_some(p.reason.as_str())
        })
    }
}

/// Lexes `src`. Total: every byte sequence yields a token stream; bytes
/// that fit no class are skipped. Never panics (proptest-pinned).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    // Advances past `chars[from..to)` counting newlines.
    let count_lines = |chars: &[char], from: usize, to: usize| -> u32 {
        chars[from..to.min(chars.len())]
            .iter()
            .filter(|&&c| c == '\n')
            .count() as u32
    };

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment: scan to EOL, mine it for pragmas.
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                scan_comment(&text, line, &mut out);
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                line += count_lines(&chars, i, j);
                i = j;
            }
            '"' => {
                let j = scan_string(&chars, i);
                out.tokens.push(Token {
                    tok: Tok::Str,
                    line,
                });
                line += count_lines(&chars, i, j);
                i = j;
            }
            '\'' => {
                // Char literal vs lifetime. `'\...'` and `'x'` are
                // chars; `'ident` (no closing quote) is a lifetime.
                if i + 1 < n && chars[i + 1] == '\\' {
                    let mut j = i + 2;
                    // Skip the escape, then scan to the closing quote.
                    if j < n {
                        j += 1;
                    }
                    while j < n && chars[j] != '\'' && chars[j] != '\n' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i = (j + 1).min(n);
                } else if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i += 3;
                } else if i + 1 < n && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    // Stray quote: emit as punctuation and move on.
                    out.tokens.push(Token {
                        tok: Tok::Punct('\''),
                        line,
                    });
                    i += 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                // Raw identifiers/strings: `r"..."`, `r#"..."#`,
                // `b"..."`, `br#"..."#`, `c"..."`, and `r#ident`.
                let is_str_prefix = matches!(word.as_str(), "r" | "b" | "br" | "c" | "cr" | "rb");
                if is_str_prefix && j < n && (chars[j] == '"' || chars[j] == '#') {
                    let k = scan_raw_string(&chars, j);
                    if k > j {
                        out.tokens.push(Token {
                            tok: Tok::Str,
                            line,
                        });
                        line += count_lines(&chars, j, k);
                        i = k;
                        continue;
                    }
                }
                if word == "b" && j < n && chars[j] == '\'' {
                    // Byte char literal b'x' / b'\n'.
                    let mut k = j + 1;
                    if k < n && chars[k] == '\\' {
                        k += 1;
                    }
                    while k < n && chars[k] != '\'' && chars[k] != '\n' {
                        k += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i = (k + 1).min(n);
                    continue;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(word),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                        // `1.5` continues the number; `1..n` does not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
                i = j;
            }
            c => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans a `"..."` literal starting at the opening quote; returns the
/// index just past the closing quote (or `n` if unterminated).
fn scan_string(chars: &[char], start: usize) -> usize {
    let n = chars.len();
    let mut j = start + 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Scans a raw string starting at `start` (which points at `#` or `"`
/// after the `r`/`b`/`c` prefix). Returns the index past the closing
/// delimiter, or `start` if this is not actually a raw string (e.g.
/// `r#ident`).
fn scan_raw_string(chars: &[char], start: usize) -> usize {
    let n = chars.len();
    let mut hashes = 0usize;
    let mut j = start;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return start; // `r#ident` — a raw identifier, not a string
    }
    j += 1;
    while j < n {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && chars[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    n
}

/// Mines one line comment for `pgs-allow:` / `pgs-lock-order:` markers.
fn scan_comment(text: &str, line: u32, out: &mut Lexed) {
    let trimmed = text.trim_start_matches(['/', '!']).trim();
    if let Some(rest) = trimmed.strip_prefix("pgs-allow:") {
        let rest = rest.trim();
        let (codes_part, reason) = match rest.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (rest, ""),
        };
        let codes: Vec<String> = codes_part
            .split(',')
            .map(|c| c.trim().to_string())
            .filter(|c| !c.is_empty())
            .collect();
        if !codes.is_empty() {
            out.pragmas.push(Pragma {
                line,
                codes,
                reason: reason.to_string(),
            });
        }
    } else if let Some(rest) = trimmed.strip_prefix("pgs-lock-order:") {
        let chain: Vec<String> = rest
            .split("->")
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if chain.len() >= 2 {
            out.lock_orders.push(LockOrderDecl { line, chain });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // unwrap() in a comment
            /* unwrap() in /* a nested */ block */
            let x = "unwrap() in a string";
            let y = r#"raw unwrap()"#;
            let z = b"bytes unwrap()";
            real.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "unwrap").count(),
            1,
            "{ids:?}"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let charlits = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((lifetimes, charlits), (2, 1));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"two\nlines\";\nfail.unwrap();";
        let lexed = lex(src);
        let unwrap_line = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unwrap".into()))
            .map(|t| t.line);
        assert_eq!(unwrap_line, Some(3));
    }

    #[test]
    fn pragmas_parse_codes_and_reason() {
        let src = "// pgs-allow: PGS001,PGS004 hash order feeds a sort\nx.iter();";
        let lexed = lex(src);
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].codes, vec!["PGS001", "PGS004"]);
        assert_eq!(lexed.pragmas[0].reason, "hash order feeds a sort");
        assert!(lexed.allowance("PGS001", 2).is_some());
        assert!(lexed.allowance("PGS003", 2).is_none());
        assert!(lexed.allowance("PGS001", 3).is_none(), "only one line down");
    }

    #[test]
    fn reasonless_pragma_grants_nothing() {
        let lexed = lex("// pgs-allow: PGS004\nx.unwrap();");
        assert_eq!(lexed.pragmas.len(), 1, "parsed but toothless");
        assert!(lexed.allowance("PGS004", 2).is_none());
    }

    #[test]
    fn lock_order_chains_parse() {
        let lexed = lex("// pgs-lock-order: sched -> state -> journal_rec\n");
        assert_eq!(
            lexed.lock_orders[0].chain,
            vec!["sched", "state", "journal_rec"]
        );
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'x", "b'", "r#", "1.", "'"] {
            let _ = lex(src);
        }
    }
}
