//! Findings and the two output formats (human text, `--format json`).

/// One rule finding. `allowed` carries the pragma reason (or the
/// policy name for policy-exempt categories); `None` means the
/// violation is undocumented and fails the check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule code (`PGS001`..`PGS005`).
    pub code: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Short machine-friendly category within the rule
    /// (e.g. `hash-iteration`, `poisoning`, `lock-order`).
    pub category: &'static str,
    /// Human explanation of this specific site.
    pub message: String,
    /// `Some(reason)` when documented by a pragma or exempted by
    /// policy; `None` = undocumented violation.
    pub allowed: Option<String>,
}

/// A full check result over one scan.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, code) and deduplicated.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Builds a report: sorts and deduplicates raw findings.
    pub fn new(mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.code, a.category.len()).cmp(&(
                b.file.as_str(),
                b.line,
                b.code,
                b.category.len(),
            ))
        });
        findings.dedup_by(|a, b| {
            (&a.file, a.line, a.code, &a.message) == (&b.file, b.line, b.code, &b.message)
        });
        Report { findings }
    }

    /// Findings with no pragma/policy cover — these fail the check.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    /// Number of undocumented violations.
    pub fn violation_count(&self) -> usize {
        self.violations().count()
    }

    /// Renders the human format: one line per undocumented violation,
    /// then a per-rule summary including documented (allowed) counts.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.violations() {
            out.push_str(&format!(
                "{}:{}: {} [{}] {}\n",
                f.file, f.line, f.code, f.category, f.message
            ));
        }
        let mut codes: Vec<&'static str> = self.findings.iter().map(|f| f.code).collect();
        codes.sort_unstable();
        codes.dedup();
        for code in codes {
            let total = self.findings.iter().filter(|f| f.code == code).count();
            let bad = self
                .findings
                .iter()
                .filter(|f| f.code == code && f.allowed.is_none())
                .count();
            out.push_str(&format!(
                "{code}: {bad} violation(s), {} documented\n",
                total - bad
            ));
        }
        let v = self.violation_count();
        out.push_str(&if v == 0 {
            "analysis clean: no undocumented violations\n".to_string()
        } else {
            format!("analysis FAILED: {v} undocumented violation(s)\n")
        });
        out
    }

    /// Renders the JSON format (stable field order, fully escaped).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!(
                "\"code\": {}, \"file\": {}, \"line\": {}, \"category\": {}, \"message\": {}, \"allowed\": {}",
                json_str(f.code),
                json_str(&f.file),
                f.line,
                json_str(f.category),
                json_str(&f.message),
                match &f.allowed {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            ));
            out.push('}');
            if i + 1 < self.findings.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  ],\n  \"violations\": {},\n  \"documented\": {}\n}}\n",
            self.violation_count(),
            self.findings.len() - self.violation_count()
        ));
        out
    }
}

/// Minimal JSON string encoder (the analyzer is dependency-free).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(code: &'static str, line: u32, allowed: Option<&str>) -> Finding {
        Finding {
            code,
            file: "x.rs".into(),
            line,
            category: "c",
            message: "m \"quoted\"".into(),
            allowed: allowed.map(String::from),
        }
    }

    #[test]
    fn violations_exclude_allowed() {
        let r = Report::new(vec![f("PGS004", 1, None), f("PGS004", 2, Some("ok"))]);
        assert_eq!(r.violation_count(), 1);
        assert!(r.render_human().contains("1 violation(s), 1 documented"));
    }

    #[test]
    fn json_is_escaped_and_counts_match() {
        let r = Report::new(vec![f("PGS001", 3, None)]);
        let j = r.render_json();
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("\"violations\": 1"), "{j}");
    }

    #[test]
    fn duplicate_findings_collapse() {
        let r = Report::new(vec![f("PGS004", 1, None), f("PGS004", 1, None)]);
        assert_eq!(r.findings.len(), 1);
    }
}
