//! Workspace discovery: which files to scan and with which rules.
//!
//! The mapping is by crate, following the invariants each crate
//! carries (DESIGN.md §13):
//!
//! | crate                                  | rules                       |
//! |----------------------------------------|-----------------------------|
//! | `core`                                 | PGS001, PGS002, PGS004      |
//! | `baselines`, `partition`, `queries`    | PGS001, PGS002              |
//! | `serve`                                | PGS003, PGS004              |
//! | `cli`                                  | PGS004                      |
//! | `graph`, `distributed`                 | (PGS005 occurrence scan)    |
//!
//! Everything first-party is still *loaded* so the cross-file PGS005
//! scan sees every `PgsError::` occurrence. Excluded entirely:
//! `vendor/` (third-party), `crates/bench` (criterion harnesses, not
//! library code), and `crates/analysis` itself (its fixtures and rule
//! tables are full of deliberate violations).

use crate::rules::{FileCtx, RuleSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates never scanned, not even for PGS005 occurrences.
const SKIP_CRATES: &[&str] = &["bench", "analysis"];

/// Per-crate rule mapping.
fn rules_for(crate_name: &str) -> RuleSet {
    match crate_name {
        "core" => RuleSet {
            hash_iteration: true,
            rng_discipline: true,
            panic_freedom: true,
            ..RuleSet::default()
        },
        "baselines" | "partition" | "queries" => RuleSet {
            hash_iteration: true,
            rng_discipline: true,
            ..RuleSet::default()
        },
        "serve" => RuleSet {
            lock_discipline: true,
            panic_freedom: true,
            ..RuleSet::default()
        },
        "cli" => RuleSet {
            panic_freedom: true,
            ..RuleSet::default()
        },
        _ => RuleSet::default(),
    }
}

/// Loads every first-party source file under `root` (the workspace
/// root) as a [`FileCtx`], rules assigned per crate. Paths in findings
/// are workspace-relative with `/` separators.
pub fn load(root: &Path) -> io::Result<Vec<FileCtx>> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if SKIP_CRATES.contains(&name.as_str()) {
            continue;
        }
        let rules = rules_for(&name);
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        files.sort();
        for path in files {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(FileCtx::new(&rel, &text, rules));
        }
    }
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_mapping_matches_design() {
        assert!(rules_for("core").hash_iteration);
        assert!(rules_for("core").panic_freedom);
        assert!(!rules_for("core").lock_discipline);
        assert!(rules_for("serve").lock_discipline);
        assert!(rules_for("serve").panic_freedom);
        assert!(!rules_for("serve").hash_iteration);
        assert!(rules_for("cli").panic_freedom);
        assert_eq!(rules_for("graph"), RuleSet::default());
    }
}
