//! Brace-scope structure over the token stream: test-code exclusion
//! and function-body extraction.
//!
//! The rules only fire on *shipping* code. Anything under a
//! `#[cfg(test)]` / `#[test]` / `#[bench]` attribute or inside a
//! `mod tests { ... }` block is marked excluded here, once, so every
//! rule shares the same notion of "library code".

use crate::lexer::{Lexed, Tok, Token};

/// One function body, as a token range into the file's stream.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body, *excluding* the outer braces.
    pub body: std::ops::Range<usize>,
}

/// Per-token scope facts for one file.
#[derive(Clone, Debug)]
pub struct Scopes {
    /// `excluded[i]` — token `i` is test/bench-only code.
    pub excluded: Vec<bool>,
    /// Every function body found in non-excluded code.
    pub functions: Vec<FnSpan>,
}

/// Computes scope facts for a lexed file. Never panics: all scans are
/// bounds-checked and unterminated structures simply run to the end.
pub fn scopes(lexed: &Lexed) -> Scopes {
    let toks = &lexed.tokens;
    let mut excluded = vec![false; toks.len()];
    mark_excluded(toks, &mut excluded);
    let functions = find_functions(toks, &excluded);
    Scopes {
        excluded,
        functions,
    }
}

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

/// Index just past the matching close for the opener at `open`
/// (`open` must point at `{`, `[`, or `(`). Unterminated = `toks.len()`.
pub fn matching_close(toks: &[Token], open: usize) -> usize {
    let (o, c) = match toks.get(open).map(|t| &t.tok) {
        Some(Tok::Punct('{')) => ('{', '}'),
        Some(Tok::Punct('[')) => ('[', ']'),
        Some(Tok::Punct('(')) => ('(', ')'),
        _ => return open + 1,
    };
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        if is_punct(&toks[i], o) {
            depth += 1;
        } else if is_punct(&toks[i], c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Marks `#[cfg(test)]`-style attributed items and `mod tests` blocks.
fn mark_excluded(toks: &[Token], excluded: &mut [bool]) {
    let mut i = 0usize;
    while i < toks.len() {
        // `#[...]` attribute mentioning `test` or `bench`: exclude the
        // attribute and the item it decorates (through any further
        // attributes, to the end of the item's `{...}` block or its
        // terminating `;`, whichever comes first).
        if is_punct(&toks[i], '#') && i + 1 < toks.len() && is_punct(&toks[i + 1], '[') {
            let attr_end = matching_close(toks, i + 1);
            let is_test_attr = toks[i + 1..attr_end]
                .iter()
                .any(|t| matches!(ident(t), Some("test" | "bench")));
            if is_test_attr {
                let end = item_end(toks, attr_end);
                for flag in excluded.iter_mut().take(end).skip(i) {
                    *flag = true;
                }
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        // `mod tests { ... }` / `mod test { ... }`.
        if ident(&toks[i]) == Some("mod")
            && matches!(toks.get(i + 1).and_then(ident), Some("tests" | "test"))
            && toks.get(i + 2).is_some_and(|t| is_punct(t, '{'))
        {
            let end = matching_close(toks, i + 2);
            for flag in excluded.iter_mut().take(end).skip(i) {
                *flag = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

/// End of the item starting at `i` (which may open with more
/// attributes): just past its `{...}` block, or just past the first
/// top-level `;` if one comes before any block (e.g. `use`, fn decls).
fn item_end(toks: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes.
    while i + 1 < toks.len() && is_punct(&toks[i], '#') && is_punct(&toks[i + 1], '[') {
        i = matching_close(toks, i + 1);
    }
    let mut j = i;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => return matching_close(toks, j),
            Tok::Punct(';') => return j + 1,
            Tok::Punct('(') | Tok::Punct('[') => j = matching_close(toks, j),
            _ => j += 1,
        }
    }
    toks.len()
}

/// Collects non-excluded `fn` bodies. Signatures are skipped by
/// walking to the first `{` outside parens/brackets; trait-method
/// declarations (ending in `;`) have no body and are skipped.
fn find_functions(toks: &[Token], excluded: &[bool]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if ident(&toks[i]) == Some("fn") && !excluded[i] {
            let name = toks
                .get(i + 1)
                .and_then(ident)
                .unwrap_or("<anon>")
                .to_string();
            let line = toks[i].line;
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') => j = matching_close(toks, j),
                    Tok::Punct('{') => {
                        body = Some(j);
                        break;
                    }
                    Tok::Punct(';') => break, // declaration without body
                    _ => j += 1,
                }
            }
            if let Some(open) = body {
                let close = matching_close(toks, open);
                // Unterminated body (close == len): run to the end —
                // there is no closing brace to exclude.
                let end = if close == toks.len() {
                    close
                } else {
                    close - 1
                };
                out.push(FnSpan {
                    name,
                    line,
                    body: open + 1..end,
                });
                i += 2; // nested fns get their own spans
                continue;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn excluded_idents(src: &str) -> Vec<String> {
        let lexed = lex(src);
        let s = scopes(&lexed);
        lexed
            .tokens
            .iter()
            .zip(&s.excluded)
            .filter(|(_, &e)| e)
            .filter_map(|(t, _)| match &t.tok {
                Tok::Ident(i) => Some(i.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_excluded() {
        let src = "
            fn shipped() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { b.unwrap(); }
            }
        ";
        let ex = excluded_idents(src);
        assert!(ex.contains(&"helper".to_string()));
        assert!(!ex.contains(&"shipped".to_string()));
    }

    #[test]
    fn test_attribute_excludes_single_fn() {
        let src = "
            #[test]
            fn check_it() { x.unwrap(); }
            fn shipped() {}
        ";
        let ex = excluded_idents(src);
        assert!(ex.contains(&"check_it".to_string()));
        assert!(!ex.contains(&"shipped".to_string()));
    }

    #[test]
    fn non_test_attributes_do_not_exclude() {
        let src = "#[derive(Debug)] struct S { x: u32 } fn f() {}";
        assert!(excluded_idents(src).is_empty());
    }

    #[test]
    fn functions_are_found_with_bodies() {
        let lexed = lex("fn alpha(x: u32) -> u32 { x } impl T { fn beta(&self) {} }");
        let s = scopes(&lexed);
        let names: Vec<&str> = s.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let lexed = lex("trait T { fn decl(&self) -> u32; fn with_body(&self) {} }");
        let s = scopes(&lexed);
        let names: Vec<&str> = s.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }
}
