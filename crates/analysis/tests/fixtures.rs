//! Rule self-tests over the fixture files: every rule has one positive
//! fixture (must produce an undocumented violation) and one negative
//! fixture (must be clean), plus a pragma-suppression check. These are
//! the same entry points the binary uses (`check_files`), so they also
//! pin the exit-code contract's `violation_count` source of truth.

use pgs_analysis::check_files;

fn fixture(name: &str) -> (String, String) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    (name.to_string(), text)
}

/// The positive fixture for `code` yields at least one undocumented
/// violation of that rule; the negative fixture yields none at all.
fn assert_rule(code: &str, pos: &str, neg: &str) {
    let report = check_files(&[fixture(pos)]);
    assert!(
        report.violations().any(|f| f.code == code),
        "{pos} should violate {code}; findings: {:#?}",
        report.findings
    );

    let report = check_files(&[fixture(neg)]);
    assert!(
        !report.violations().any(|f| f.code == code),
        "{neg} should not violate {code}; findings: {:#?}",
        report.findings
    );
}

#[test]
fn pgs001_hash_iteration() {
    assert_rule("PGS001", "pgs001_pos.rs", "pgs001_neg.rs");
}

#[test]
fn pgs002_rng_discipline() {
    assert_rule("PGS002", "pgs002_pos.rs", "pgs002_neg.rs");
}

#[test]
fn pgs003_lock_discipline() {
    assert_rule("PGS003", "pgs003_pos.rs", "pgs003_neg.rs");
}

#[test]
fn pgs004_panic_freedom() {
    assert_rule("PGS004", "pgs004_pos.rs", "pgs004_neg.rs");
}

#[test]
fn pgs005_error_surface() {
    assert_rule("PGS005", "pgs005_pos.rs", "pgs005_neg.rs");
}

#[test]
fn pragma_downgrades_a_violation_to_documented() {
    let src = "
        fn f(m: FxHashSet<u32>) -> usize {
            // pgs-allow: PGS001 order-insensitive count
            m.iter().count()
        }
    ";
    let report = check_files(&[("pragma.rs".to_string(), src.to_string())]);
    assert_eq!(report.violation_count(), 0, "{:#?}", report.findings);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(
        report.findings[0].allowed.as_deref(),
        Some("order-insensitive count")
    );
}

#[test]
fn pragma_without_reason_does_not_suppress() {
    let src = "
        fn f(m: FxHashSet<u32>) -> usize {
            // pgs-allow: PGS001
            m.iter().count()
        }
    ";
    let report = check_files(&[("pragma.rs".to_string(), src.to_string())]);
    assert_eq!(report.violation_count(), 1, "{:#?}", report.findings);
}

#[test]
fn json_report_is_well_formed_enough_for_ci() {
    let report = check_files(&[fixture("pgs004_pos.rs")]);
    let json = report.render_json();
    assert!(json.contains("\"version\": 1"), "{json}");
    assert!(json.contains("\"code\": \"PGS004\""), "{json}");
    assert!(json.contains("\"violations\""), "{json}");
}
