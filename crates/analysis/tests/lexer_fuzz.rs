//! The lexer must never panic: it runs over every source file in the
//! workspace on every CI run, including files that are mid-edit,
//! unterminated, or not valid Rust at all. Proptest feeds it random
//! byte soup and adversarial fragments built from the constructs it
//! special-cases (raw strings, nested comments, lifetimes, pragmas).

use pgs_analysis::lexer::lex;
use pgs_analysis::rules::{FileCtx, RuleSet};
use proptest::prelude::*;

proptest! {
    #[test]
    fn random_text_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        // Token lines stay within the source's line count.
        let lines = src.split('\n').count() as u32;
        prop_assert!(lexed.tokens.iter().all(|t| t.line >= 1 && t.line <= lines.max(1)));
    }

    #[test]
    fn fragment_soup_never_panics(picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..48)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let _ = lex(&src);
        // The full pipeline (scoping + every rule) is panic-free too.
        let ctx = FileCtx::new("soup.rs", &src, RuleSet::all());
        let _ = pgs_analysis::rules::check_all(std::slice::from_ref(&ctx));
    }
}

/// Adversarial building blocks: every construct the lexer treats
/// specially, plus unterminated variants of each.
const FRAGMENTS: &[&str] = &[
    "fn f() { ",
    "}",
    "\"str with \\\" escape\" ",
    "\"unterminated ",
    "r#\"raw \"# ",
    "r##\"raw with # inside\"## ",
    "r#\"unterminated raw ",
    "b\"bytes\" ",
    "'c' ",
    "'\\n' ",
    "'lifetime ",
    "<'a> ",
    "// line comment\n",
    "// pgs-allow: PGS001,PGS004 reason text\n",
    "// pgs-allow: PGS001\n",
    "// pgs-lock-order: a -> b -> c\n",
    "// pgs-lock-order: ->->\n",
    "/* block /* nested */ comment */ ",
    "/* unterminated ",
    "1.5 ",
    "1..n ",
    "0xff ",
    "m.lock().unwrap() ",
    "x.unwrap(); ",
    "panic!(\"boom\") ",
    "#[cfg(test)] mod tests { fn t() {} } ",
    "enum PgsError { A, B(u8) } ",
    "impl Display for PgsError { ",
    "let m: FxHashMap<u32, f64> = FxHashMap::default(); ",
    "for (k, v) in &m { ",
    "match s.lock().unwrap() { ",
    "\u{0} ",
    "é→☃ ",
];
