// PGS001 negative fixture: drains are sorted before use.
fn canonical_output(m: FxHashMap<u32, f64>) -> Vec<(u32, f64)> {
    let mut out: Vec<(u32, f64)> = m.into_iter().collect();
    out.sort_unstable_by_key(|e| e.0);
    out
}
