// PGS001 positive fixture: unordered hash iteration on a canonical path.
fn canonical_output(m: FxHashMap<u32, f64>) -> Vec<(u32, f64)> {
    let mut out = Vec::new();
    for (k, v) in &m {
        out.push((*k, *v));
    }
    out
}
