// PGS003 negative fixture: nesting follows the declared order, and a
// transitive hop (sched -> state via running) is legal too.
// pgs-lock-order: sched -> running -> state

fn forwards(inner: &Inner) {
    let mut sched = inner.sched.lock().unwrap();
    let st = inner.state.lock().unwrap();
    sched.touch(&st);
}
