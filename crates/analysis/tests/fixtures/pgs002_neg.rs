// PGS002 negative fixture: every RNG flows from the iteration seed.
fn seeded_perturbation(xs: &mut [f64], seed: u64, t: u64) {
    let mut rng = StdRng::seed_from_u64(iteration_seed(seed, t));
    for x in xs.iter_mut() {
        *x += rng.random_range(-0.5..0.5);
    }
}
