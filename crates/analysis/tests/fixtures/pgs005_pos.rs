// PGS005 positive fixture: one variant never constructed, one never
// rendered by Display.
pub enum PgsError {
    EmptyGraph,
    NeverBuilt,
    NeverShown,
}

fn f() -> PgsError {
    PgsError::EmptyGraph
}

fn g() -> PgsError {
    PgsError::NeverShown
}

impl std::fmt::Display for PgsError {
    fn fmt(&self, w: &mut std::fmt::Formatter) -> std::fmt::Result {
        match self {
            PgsError::EmptyGraph => write!(w, "empty graph"),
            PgsError::NeverBuilt => write!(w, "unreachable in practice"),
            _ => write!(w, "other"),
        }
    }
}
