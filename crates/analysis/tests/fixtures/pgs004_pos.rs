// PGS004 positive fixture: undocumented panic sites in library code.
fn fragile(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("always ok");
    if a > b {
        panic!("a > b");
    }
    a + b
}
