// PGS004 negative fixture: poisoning propagation is policy-exempt,
// test code is excluded, and errors are propagated.
fn robust(m: &Mutex<u32>, x: Option<u32>) -> Result<u32, String> {
    let guard = m.lock().unwrap();
    x.map(|v| v + *guard).ok_or_else(|| "missing".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_here() {
        let v: Option<u32> = None;
        v.unwrap();
    }
}
