// PGS005 negative fixture: every variant is constructed and rendered.
pub enum PgsError {
    EmptyGraph,
    InvalidAlpha(f64),
}

fn f() -> PgsError {
    PgsError::EmptyGraph
}

fn g(a: f64) -> PgsError {
    PgsError::InvalidAlpha(a)
}

impl std::fmt::Display for PgsError {
    fn fmt(&self, w: &mut std::fmt::Formatter) -> std::fmt::Result {
        match self {
            PgsError::EmptyGraph => write!(w, "empty graph"),
            PgsError::InvalidAlpha(a) => write!(w, "invalid alpha {a}"),
        }
    }
}
