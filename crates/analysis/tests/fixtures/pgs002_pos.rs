// PGS002 positive fixture: entropy-sourced RNG in engine code.
fn noisy_perturbation(xs: &mut [f64]) {
    let mut rng = rand::thread_rng();
    for x in xs.iter_mut() {
        *x += rng.random_range(-0.5..0.5);
    }
}
