// PGS003 positive fixture: nesting against the declared order.
// pgs-lock-order: sched -> state

fn backwards(inner: &Inner) {
    let st = inner.state.lock().unwrap();
    let mut sched = inner.sched.lock().unwrap();
    sched.touch(&st);
}
