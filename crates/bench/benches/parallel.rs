//! Criterion benchmark for the parallel evaluate/commit engine:
//! end-to-end `summarize` at 1, 2, and `available_parallelism` worker
//! threads, plus the parallel candidate-generation phase in isolation.
//! On a multi-core box the N-thread rows should show the speedup; on a
//! single core they bound the engine's coordination overhead (the rows
//! should be within a few percent of each other).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pgs_core::exec::Exec;
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_core::shingle::{candidate_groups, ShingleParams};
use pgs_core::weights::NodeWeights;
use pgs_core::working::WorkingSummary;
use pgs_graph::gen::barabasi_albert;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn thread_counts() -> Vec<usize> {
    let hw = rayon::current_num_threads();
    let mut counts = vec![1, 2, hw];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bench_parallel(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 5, 1);
    let budget = 0.4 * g.size_bits();

    let mut group = c.benchmark_group("parallel_summarize_10k");
    group.sample_size(10);
    for threads in thread_counts() {
        let cfg = PegasusConfig {
            num_threads: threads,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            b.iter(|| black_box(summarize(&g, &[0, 1], budget, cfg)))
        });
    }
    group.finish();

    let w = NodeWeights::personalized(&g, &[0, 1], 1.25);
    let ws = WorkingSummary::new(&g, &w, pgs_core::cost::CostModel::ErrorCorrection);
    let mut group = c.benchmark_group("parallel_candidate_groups_10k");
    group.sample_size(10);
    for threads in thread_counts() {
        let exec = Exec::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &exec, |b, exec| {
            let mut rng = StdRng::seed_from_u64(3);
            let params = ShingleParams::default();
            b.iter(|| black_box(candidate_groups(&ws, &mut rng, &params, exec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
