//! Criterion micro-benchmarks for PeGaSus's internal phases: candidate
//! generation (shingles), merge evaluation (Lemma 1), personalized
//! weights (multi-source BFS), error evaluation, and partitioning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pgs_core::cost::CostModel;
use pgs_core::error::personalized_error;
use pgs_core::shingle::{candidate_groups, ShingleParams};
use pgs_core::weights::NodeWeights;
use pgs_core::working::{Scratch, WorkingSummary};
use pgs_core::{summarize, PegasusConfig};
use pgs_graph::gen::{barabasi_albert, planted_partition};
use pgs_graph::traverse::multi_source_bfs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_components(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 5, 1);
    let w = NodeWeights::personalized(&g, &[0, 1, 2], 1.25);

    c.bench_function("weights/multi_source_bfs_10k", |b| {
        let sources: Vec<u32> = (0..100).collect();
        b.iter(|| black_box(multi_source_bfs(&g, &sources)))
    });

    c.bench_function("weights/personalized_build_10k", |b| {
        b.iter(|| black_box(NodeWeights::personalized(&g, &[0, 1, 2], 1.25)))
    });

    c.bench_function("shingle/candidate_groups_10k", |b| {
        let ws = WorkingSummary::new(&g, &w, CostModel::ErrorCorrection);
        let params = ShingleParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let exec = pgs_core::exec::Exec::serial();
        b.iter(|| black_box(candidate_groups(&ws, &mut rng, &params, &exec)))
    });

    c.bench_function("merge/eval_merge_pair", |b| {
        let ws = WorkingSummary::new(&g, &w, CostModel::ErrorCorrection);
        let mut scratch = Scratch::default();
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 2) % 9_000;
            black_box(ws.eval_merge(i, i + 1, &mut scratch))
        })
    });

    c.bench_function("merge/merge_and_readd", |b| {
        b.iter_batched(
            || WorkingSummary::new(&g, &w, CostModel::ErrorCorrection),
            |mut ws| {
                let mut scratch = Scratch::default();
                for i in 0..50u32 {
                    ws.merge(2 * i, 2 * i + 1, &mut scratch);
                }
                black_box(ws.num_superedges())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("error/personalized_error_eval", |b| {
        let s = summarize(&g, &[0], 0.5 * g.size_bits(), &PegasusConfig::default());
        b.iter(|| black_box(personalized_error(&g, &s, &w).unwrap()))
    });

    let community = planted_partition(5_000, 50, 35_000, 5_000, 2);
    c.bench_function("partition/louvain_5k", |b| {
        b.iter(|| black_box(pgs_partition::louvain(&community, 1)))
    });
    c.bench_function("partition/blp_5k", |b| {
        b.iter(|| black_box(pgs_partition::blp_partition(&community, 8, 10, 1)))
    });
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
