//! Criterion micro-benchmarks for candidate generation (DESIGN.md §11):
//! the persistent-lane incremental grouper vs the legacy full min-hash
//! recompute, on a mid-run summary state, plus the one-time signature
//! attachment cost the incremental path amortizes.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use pgs_core::cost::CostModel;
use pgs_core::exec::Exec;
use pgs_core::shingle::{
    attach_signatures, candidate_groups, candidate_groups_incremental, ShingleParams,
};
use pgs_core::weights::NodeWeights;
use pgs_core::working::{Scratch, WorkingSummary};
use pgs_graph::gen::barabasi_albert;
use pgs_graph::Graph;

const LANES: usize = 16;

/// A summary state mid-run: every even singleton merged with its odd
/// neighbor id, so signatures span multiple members and live traversal
/// skips dead slots — the regime both groupers actually see.
fn premerged<'a>(g: &'a Graph, w: &'a NodeWeights, pairs: u32) -> WorkingSummary<'a> {
    let mut ws = WorkingSummary::new(g, w, CostModel::ErrorCorrection);
    let mut scratch = Scratch::default();
    for i in 0..pairs {
        ws.merge(
            ws.supernode_of(2 * i),
            ws.supernode_of(2 * i + 1),
            &mut scratch,
        );
    }
    ws
}

fn bench_candidates(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 5, 1);
    let w = NodeWeights::uniform(g.num_nodes());
    let mut ws = premerged(&g, &w, 2_000);
    attach_signatures(&mut ws, 42, LANES, &Exec::serial());
    let params = ShingleParams::default();
    let gains = vec![0.0f64; g.num_nodes()];
    let exec = Exec::serial();

    c.bench_function("candidates/recompute", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(candidate_groups(&ws, &mut rng, &params, &exec)))
    });

    c.bench_function("candidates/incremental", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(candidate_groups_incremental(&ws, &mut rng, &params, &gains)))
    });

    // The one-time cost the incremental path pays at run start (and on
    // resume) instead of a fresh min-hash pass every iteration.
    c.bench_function("candidates/attach_signatures", |b| {
        b.iter(|| {
            attach_signatures(&mut ws, 42, LANES, &exec);
            black_box(ws.signature(ws.live_iter().next().unwrap(), 0))
        })
    });
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
