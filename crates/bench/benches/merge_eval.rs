//! Criterion micro-benchmarks for the merge-evaluation hot loop
//! (DESIGN.md §7): the group-local superedge-weight cache vs the legacy
//! member-edge-rescan evaluator, on single evaluations and on whole
//! Alg.-2 group rounds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pgs_core::cost::CostModel;
use pgs_core::weights::NodeWeights;
use pgs_core::working::{evaluate_group_with, GroupView, MergeEvaluator, Scratch, WorkingSummary};
use pgs_core::SuperId;
use pgs_graph::gen::barabasi_albert;
use pgs_graph::Graph;

/// A summary state mid-run: every even singleton merged with its odd
/// neighbor id, so supernodes carry multiple members and non-trivial
/// neighbor spans — the regime the cache is built for.
fn premerged<'a>(g: &'a Graph, w: &'a NodeWeights, pairs: u32) -> WorkingSummary<'a> {
    let mut ws = WorkingSummary::new(g, w, CostModel::ErrorCorrection);
    let mut scratch = Scratch::default();
    for i in 0..pairs {
        ws.merge(
            ws.supernode_of(2 * i),
            ws.supernode_of(2 * i + 1),
            &mut scratch,
        );
    }
    ws
}

fn bench_merge_eval(c: &mut Criterion) {
    let g = barabasi_albert(10_000, 5, 1);
    let w = NodeWeights::personalized(&g, &[0, 1, 2], 1.25);
    let ws = premerged(&g, &w, 2_000);
    let group: Vec<SuperId> = ws.live_ids().into_iter().take(400).collect();

    c.bench_function("merge_eval/pair_legacy_hash", |b| {
        let view = GroupView::new(&ws);
        let mut scratch = pgs_core::legacy_eval::HashScratch::default();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 2) % (group.len() - 1);
            black_box(pgs_core::legacy_eval::eval_merge_hash(
                &view,
                group[i],
                group[i + 1],
                &mut scratch,
            ))
        })
    });

    c.bench_function("merge_eval/pair_scan", |b| {
        let view = GroupView::new(&ws);
        let mut scratch = Scratch::default();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 2) % (group.len() - 1);
            black_box(pgs_core::working::eval_merge_view(
                &view,
                group[i],
                group[i + 1],
                &mut scratch,
            ))
        })
    });

    c.bench_function("merge_eval/pair_cached", |b| {
        let mut scratch = Scratch::default();
        let mut view = GroupView::with_cache(&ws, &group, &mut scratch);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 2) % (group.len() - 1);
            black_box(view.eval_merge_cached(group[i], group[i + 1], &mut scratch))
        })
    });

    c.bench_function("merge_eval/group_round_legacy_hash", |b| {
        b.iter(|| {
            black_box(evaluate_group_with(
                &ws,
                &group,
                0.2,
                7,
                false,
                MergeEvaluator::LegacyHash,
            ))
        })
    });

    c.bench_function("merge_eval/group_round_scan", |b| {
        b.iter(|| {
            black_box(evaluate_group_with(
                &ws,
                &group,
                0.2,
                7,
                false,
                MergeEvaluator::Scan,
            ))
        })
    });

    c.bench_function("merge_eval/group_round_cached", |b| {
        b.iter(|| {
            black_box(evaluate_group_with(
                &ws,
                &group,
                0.2,
                7,
                false,
                MergeEvaluator::Cached,
            ))
        })
    });
}

criterion_group!(benches, bench_merge_eval);
criterion_main!(benches);
