//! Criterion micro-benchmarks: query answering on summaries vs exact
//! answering on the input graph (the Fig. 8(b)/(c) query-time
//! comparison at micro scale), with the summary side split into the
//! legacy per-call path ([`pgs_queries::reference`]) and a prebuilt
//! [`QueryEngine`] plan.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pgs_baselines::{saags_summarize, SaagsConfig};
use pgs_core::{summarize, PegasusConfig};
use pgs_graph::gen::planted_partition;
use pgs_queries::{hops_exact, reference, rwr_exact, QueryEngine};

fn bench_queries(c: &mut Criterion) {
    let g = planted_partition(3_000, 30, 21_000, 3_000, 1);
    let budget = 0.5 * g.size_bits();
    let pegasus = summarize(&g, &[0], budget, &PegasusConfig::default());
    // SAAGs produces dense summaries — queries on it are slower, the
    // effect Fig. 8 highlights.
    let saags = saags_summarize(&g, g.num_nodes() / 2, &SaagsConfig::default());
    let engine = QueryEngine::new(&pegasus);
    let saags_engine = QueryEngine::new(&saags);

    let mut group = c.benchmark_group("rwr");
    group.sample_size(10);
    group.bench_function("exact_on_graph", |b| {
        b.iter(|| black_box(rwr_exact(&g, 7, 0.05)))
    });
    group.bench_function("legacy_per_call_on_summary", |b| {
        b.iter(|| black_box(reference::rwr_summary(&pegasus, 7, 0.05)))
    });
    group.bench_function("engine_on_pegasus_summary", |b| {
        b.iter(|| black_box(engine.rwr(7, 0.05)))
    });
    group.bench_function("engine_on_saags_dense_summary", |b| {
        b.iter(|| black_box(saags_engine.rwr(7, 0.05)))
    });
    group.finish();

    let mut group = c.benchmark_group("bfs_hops");
    group.sample_size(20);
    group.bench_function("exact_on_graph", |b| {
        b.iter(|| black_box(hops_exact(&g, 7)))
    });
    group.bench_function("legacy_per_call_on_summary", |b| {
        b.iter(|| black_box(reference::hops_summary(&pegasus, 7)))
    });
    group.bench_function("engine_on_pegasus_summary", |b| {
        b.iter(|| black_box(engine.hops(7)))
    });
    group.bench_function("engine_on_saags_dense_summary", |b| {
        b.iter(|| black_box(saags_engine.hops(7)))
    });
    group.finish();

    let mut group = c.benchmark_group("php");
    group.sample_size(10);
    group.bench_function("legacy_per_call_on_summary", |b| {
        b.iter(|| black_box(reference::php_summary(&pegasus, 7, 0.95)))
    });
    group.bench_function("engine_on_pegasus_summary", |b| {
        b.iter(|| black_box(engine.php(7, 0.95)))
    });
    group.finish();

    let mut group = c.benchmark_group("neighborhood");
    group.bench_function("alg4_get_neighbors", |b| {
        b.iter(|| black_box(engine.neighbors(7)))
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
