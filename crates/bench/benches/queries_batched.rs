//! Criterion benchmark for batched query serving through one
//! [`QueryEngine`]: a fixed RWR/HOP batch answered per-call (legacy
//! reference path), serially through a reused plan, and via the
//! `*_batch` fan-out at 1, 2, and `available_parallelism` threads.
//! On a multi-core box the N-thread rows should show the speedup; on a
//! single core they bound the fan-out overhead (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pgs_core::exec::Exec;
use pgs_core::{summarize, PegasusConfig};
use pgs_graph::gen::planted_partition;
use pgs_graph::NodeId;
use pgs_queries::{reference, QueryEngine};

fn thread_counts() -> Vec<usize> {
    let hw = rayon::current_num_threads();
    let mut counts = vec![1, 2, hw];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bench_queries_batched(c: &mut Criterion) {
    let g = planted_partition(3_000, 30, 21_000, 3_000, 1);
    let budget = 0.3 * g.size_bits();
    let queries: Vec<NodeId> = (0..64u32).map(|i| i * 31).collect();
    let summary = summarize(&g, &queries, budget, &PegasusConfig::default());
    let engine = QueryEngine::new(&summary);

    let mut group = c.benchmark_group("queries_batched_rwr64");
    group.sample_size(10);
    group.bench_function("legacy_per_call", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(reference::rwr_summary(&summary, q, 0.05));
            }
        })
    });
    group.bench_function("plan_reuse_serial", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(engine.rwr(q, 0.05));
            }
        })
    });
    for threads in thread_counts() {
        group.bench_with_input(
            BenchmarkId::new("batched", threads),
            &threads,
            |b, &threads| {
                let exec = Exec::new(threads);
                b.iter(|| black_box(engine.rwr_batch(&queries, 0.05, &exec)))
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("queries_batched_hop64");
    group.sample_size(10);
    group.bench_function("plan_reuse_serial", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(engine.hops(q));
            }
        })
    });
    for threads in thread_counts() {
        group.bench_with_input(
            BenchmarkId::new("batched", threads),
            &threads,
            |b, &threads| {
                let exec = Exec::new(threads);
                b.iter(|| black_box(engine.hops_batch(&queries, &exec)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queries_batched);
criterion_main!(benches);
