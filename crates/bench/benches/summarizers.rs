//! Criterion micro-benchmarks: end-to-end summarization per method
//! (the Fig. 8(a) summarization-time comparison at micro scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pgs_baselines::{kgrass_summarize, s2l_summarize, saags_summarize};
use pgs_baselines::{KGrassConfig, S2lConfig, SaagsConfig};
use pgs_core::{ssumm_summarize, summarize, PegasusConfig, SsummConfig};
use pgs_graph::gen::planted_partition;

fn bench_summarizers(c: &mut Criterion) {
    let g = planted_partition(2_000, 20, 14_000, 2_000, 1);
    let budget = 0.5 * g.size_bits();
    let k = g.num_nodes() / 2;
    let targets: Vec<u32> = (0..100).collect();

    let mut group = c.benchmark_group("summarize_2k_nodes");
    group.sample_size(10);

    group.bench_function("pegasus_personalized", |b| {
        b.iter(|| black_box(summarize(&g, &targets, budget, &PegasusConfig::default())))
    });
    group.bench_function("pegasus_uniform", |b| {
        b.iter(|| black_box(summarize(&g, &[], budget, &PegasusConfig::default())))
    });
    group.bench_function("ssumm", |b| {
        b.iter(|| black_box(ssumm_summarize(&g, budget, &SsummConfig::default())))
    });
    group.bench_function("saags", |b| {
        b.iter(|| black_box(saags_summarize(&g, k, &SaagsConfig::default())))
    });
    group.bench_function("s2l", |b| {
        b.iter(|| black_box(s2l_summarize(&g, k, &S2lConfig::default())))
    });
    group.bench_function("kgrass", |b| {
        b.iter(|| black_box(kgrass_summarize(&g, k, &KGrassConfig::default())))
    });
    group.finish();

    // Scaling shape: PeGaSus runtime across graph sizes (Fig. 6 at
    // micro scale; the full sweep lives in `exp_fig6_scalability`).
    let mut scale_group = c.benchmark_group("pegasus_scaling");
    scale_group.sample_size(10);
    for n in [500usize, 1_000, 2_000, 4_000] {
        let g = planted_partition(n, n / 100, 7 * n, n, 2);
        let budget = 0.5 * g.size_bits();
        scale_group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(summarize(g, &[0], budget, &PegasusConfig::default())))
        });
    }
    scale_group.finish();
}

criterion_group!(benches, bench_summarizers);
criterion_main!(benches);
