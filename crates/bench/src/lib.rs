//! # pgs-bench — experiment harness for the PeGaSus evaluation
//!
//! One binary per table/figure of Sect. V (see `src/bin/`), plus
//! Criterion micro-benchmarks (see `benches/`). This library holds what
//! they share: the Table II dataset stand-ins, query-accuracy
//! evaluation, and environment knobs.
//!
//! ## Dataset substitution (DESIGN.md §5)
//!
//! The paper's six real-world graphs are SNAP/KONECT downloads that are
//! not redistributable offline. Each gets a structurally matched
//! synthetic stand-in (community-planted graphs for social /
//! collaboration / co-purchase networks, preferential attachment for
//! internet topologies, R-MAT for hyperlinks), with the two smallest at
//! their original sizes and the larger ones scaled down so the full
//! suite completes on a laptop. Loading the original edge lists through
//! [`pgs_graph::io::read_edge_list`] reproduces the paper's exact
//! setting.
//!
//! ## Knobs
//!
//! * `PGS_QUERIES` — query nodes per accuracy measurement (default 25;
//!   the paper uses 100).
//! * `PGS_SCALE` — multiplies dataset sizes (default 1.0; >1 approaches
//!   the paper's scale at a proportional runtime cost).

#![forbid(unsafe_code)]

use std::time::Instant;

use pgs_graph::traverse::largest_component;
use pgs_graph::{Graph, NodeId};
use pgs_queries::{
    hops_exact, hops_to_f64, php_exact, rwr_exact, smape, spearman, QueryEngine, PHP_DECAY,
    RWR_RESTART,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A named dataset stand-in (Table II).
pub struct Dataset {
    /// Short name used in the paper's figures (LA, CA, DB, A6, SK, WK).
    pub name: &'static str,
    /// What the stand-in substitutes for.
    pub paper_name: &'static str,
    /// Nodes of the *paper's* dataset, for the Table II comparison.
    pub paper_nodes: usize,
    /// Edges of the *paper's* dataset.
    pub paper_edges: usize,
    /// The generated graph (largest connected component, like the paper).
    pub graph: Graph,
}

fn scale() -> f64 {
    std::env::var("PGS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Parses the environment knob `name`, falling back to `default` on
/// absence or a malformed value (shared by the experiment binaries).
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Number of query nodes per accuracy measurement (`PGS_QUERIES`).
pub fn num_queries() -> usize {
    std::env::var("PGS_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25)
}

/// Worker threads the experiment binaries hand to the summarizers
/// (`PGS_THREADS`; default 0 = all hardware threads). Summaries are
/// identical at any setting — only wall-clock changes.
pub fn num_threads() -> usize {
    std::env::var("PGS_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn lcc(g: Graph) -> Graph {
    largest_component(&g).0
}

/// Names of the six Table II stand-ins, smallest first.
pub fn dataset_names() -> [&'static str; 6] {
    ["LA", "CA", "DB", "A6", "SK", "WK"]
}

/// Builds one Table II stand-in by name (see [`dataset_names`]).
///
/// # Panics
/// Panics on an unknown name.
pub fn dataset(name: &str) -> Dataset {
    let s = scale();
    let sz = |base: usize| ((base as f64 * s) as usize).max(64);
    match name {
        "LA" => Dataset {
            name: "LA",
            paper_name: "LastFM-Asia (social)",
            paper_nodes: 7_624,
            paper_edges: 27_806,
            // Original size: community structure + heavy-tailed degrees.
            graph: lcc(pgs_graph::gen::dc_planted_partition(
                sz(7_624),
                76,
                sz(23_000),
                sz(4_800),
                0.75,
                101,
            )),
        },
        "CA" => Dataset {
            name: "CA",
            paper_name: "Caida (internet)",
            paper_nodes: 26_475,
            paper_edges: 53_381,
            // Original size: heavy-tailed internet topology with the
            // hub-and-leaf redundancy of real AS graphs.
            graph: lcc(pgs_graph::gen::barabasi_albert_mixed(sz(26_475), 0.55, 102)),
        },
        "DB" => Dataset {
            name: "DB",
            paper_name: "DBLP (collaboration, 1/16 scale)",
            paper_nodes: 317_080,
            paper_edges: 1_049_866,
            graph: lcc(pgs_graph::gen::dc_planted_partition(
                sz(19_800),
                400,
                sz(53_000),
                sz(12_600),
                0.75,
                103,
            )),
        },
        "A6" => Dataset {
            name: "A6",
            paper_name: "Amazon0601 (co-purchase, 1/16 scale)",
            paper_nodes: 403_364,
            paper_edges: 2_443_311,
            graph: lcc(pgs_graph::gen::barabasi_albert(sz(25_200), 6, 104)),
        },
        "SK" => Dataset {
            name: "SK",
            paper_name: "Skitter (internet, 1/40 scale)",
            paper_nodes: 1_694_616,
            paper_edges: 11_094_209,
            graph: lcc(pgs_graph::gen::barabasi_albert(sz(42_000), 7, 105)),
        },
        "WK" => Dataset {
            name: "WK",
            paper_name: "Wikipedia (hyperlinks, 1/64 scale)",
            paper_nodes: 3_174_745,
            paper_edges: 103_310_688,
            graph: lcc(pgs_graph::gen::rmat(
                (15.0 + s.log2()).round().max(10.0) as u32,
                sz(1_600_000),
                0.57,
                0.19,
                0.19,
                106,
            )),
        },
        other => panic!("unknown dataset {other}"),
    }
}

/// All six stand-ins (expensive: builds every graph eagerly).
pub fn datasets() -> Vec<Dataset> {
    dataset_names().iter().map(|n| dataset(n)).collect()
}

/// The small-dataset subset on which the supernode-budgeted baselines
/// (k-GraSS, S2L, SAAGs) complete in reasonable time. The paper reports
/// o.o.t / o.o.m for them on larger datasets (Fig. 8); we apply the same
/// policy by size threshold.
pub fn baseline_feasible(g: &Graph) -> bool {
    g.num_nodes() <= 10_000
}

/// Uniformly sampled query nodes.
pub fn sample_queries(g: &Graph, count: usize, seed: u64) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = g.nodes().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(count.min(g.num_nodes()));
    ids
}

/// The three node-similarity query types of Sect. V-A.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryType {
    /// Random walk with restart.
    Rwr,
    /// Shortest-path hop count.
    Hop,
    /// Penalized hitting probability.
    Php,
}

impl QueryType {
    /// All query types.
    pub const ALL: [QueryType; 3] = [QueryType::Rwr, QueryType::Hop, QueryType::Php];

    /// Figure-legend name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryType::Rwr => "RWR",
            QueryType::Hop => "HOP",
            QueryType::Php => "PHP",
        }
    }
}

/// Ground-truth answers for a batch of queries, computed once per
/// dataset and reused across every ratio/method cell.
pub struct GroundTruth {
    /// The query nodes.
    pub queries: Vec<NodeId>,
    /// Exact answer vectors, aligned with `queries`.
    pub answers: Vec<Vec<f64>>,
    /// Which query these answers are for.
    pub query_type: QueryType,
}

impl GroundTruth {
    /// Computes exact answers on the input graph.
    pub fn compute(g: &Graph, queries: &[NodeId], qt: QueryType) -> Self {
        let answers = queries
            .iter()
            .map(|&q| match qt {
                QueryType::Rwr => rwr_exact(g, q, RWR_RESTART),
                QueryType::Hop => hops_to_f64(&hops_exact(g, q)),
                QueryType::Php => php_exact(g, q, PHP_DECAY),
            })
            .collect();
        GroundTruth {
            queries: queries.to_vec(),
            answers,
            query_type: qt,
        }
    }

    /// Mean (SMAPE, Spearman) of the summary's answers against this
    /// ground truth. Compiles one [`QueryEngine`] plan and reuses it
    /// for the whole query batch.
    pub fn score_summary(&self, s: &pgs_core::Summary) -> (f64, f64) {
        let engine = QueryEngine::new(s);
        let mut sm = 0.0;
        let mut sc = 0.0;
        for (i, &q) in self.queries.iter().enumerate() {
            let approx = match self.query_type {
                QueryType::Rwr => engine.rwr(q, RWR_RESTART),
                QueryType::Hop => hops_to_f64(&engine.hops(q)),
                QueryType::Php => engine.php(q, PHP_DECAY),
            };
            sm += smape(&self.answers[i], &approx);
            sc += spearman(&self.answers[i], &approx);
        }
        let n = self.queries.len() as f64;
        (sm / n, sc / n)
    }

    /// Mean (SMAPE, Spearman) of a distributed cluster's answers.
    pub fn score_cluster(&self, c: &pgs_distributed::Cluster) -> (f64, f64) {
        let mut sm = 0.0;
        let mut sc = 0.0;
        for (i, &q) in self.queries.iter().enumerate() {
            let approx = match self.query_type {
                QueryType::Rwr => c.rwr(q, RWR_RESTART),
                QueryType::Hop => hops_to_f64(&c.hops(q)),
                QueryType::Php => c.php(q, PHP_DECAY),
            };
            sm += smape(&self.answers[i], &approx);
            sc += spearman(&self.answers[i], &approx);
        }
        let n = self.queries.len() as f64;
        (sm / n, sc / n)
    }
}

/// Wall-clock timing helper.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Least-squares slope of `log2(y)` against `log2(x)` — the linearity
/// check of Fig. 6 (slope ≈ 1 ⇒ linear scaling).
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.log2(), y.log2()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in pts {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_datasets_are_connected_and_nonempty() {
        // Only the two original-size small datasets, to keep unit tests
        // fast; the experiment binaries exercise the rest.
        for d in ["LA", "CA"].map(dataset) {
            assert!(d.graph.num_nodes() > 0, "{}: empty", d.name);
            assert!(
                pgs_graph::traverse::is_connected(&d.graph),
                "{}: not connected after LCC",
                d.name
            );
        }
    }

    #[test]
    fn loglog_slope_of_linear_data_is_one() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_slope_of_quadratic_data_is_two() {
        let pts: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_identity_scores_perfectly() {
        let g = pgs_graph::gen::barabasi_albert(200, 3, 1);
        let queries = sample_queries(&g, 5, 2);
        for qt in QueryType::ALL {
            let gt = GroundTruth::compute(&g, &queries, qt);
            let s = pgs_core::Summary::identity(&g);
            let (sm, sc) = gt.score_summary(&s);
            assert!(sm < 1e-6, "{}: smape {sm}", qt.name());
            assert!(sc > 0.999, "{}: spearman {sc}", qt.name());
        }
    }

    #[test]
    fn sample_queries_distinct() {
        let g = pgs_graph::gen::barabasi_albert(100, 2, 3);
        let q = sample_queries(&g, 30, 7);
        let mut s = q.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 30);
    }
}
