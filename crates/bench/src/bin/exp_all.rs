//! Runs every experiment binary in sequence (the full Sect. V
//! reproduction). Each sub-experiment is also runnable on its own.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_all
//! ```

use std::process::Command;

fn main() {
    let exps = [
        "exp_datasets",
        "exp_fig5_effectiveness",
        "exp_fig6_scalability",
        "exp_fig7_query_accuracy",
        "exp_fig8_speed",
        "exp_fig9_alpha",
        "exp_fig10_diameter",
        "exp_fig11_beta",
        "exp_fig12_distributed",
        "exp_ablation_cost",
    ];
    // Resolve sibling binaries from our own location so this works from
    // any working directory and any target dir.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for exp in exps {
        println!("\n################ {exp} ################");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("{exp} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed.");
}
