//! Fig. 2(b) + Fig. 6 — linear scalability.
//!
//! Measures PeGaSus wall time on node-sampled induced subgraphs (10%..
//! 100%) of (a) the Skitter stand-in with |T| = 100 and |T| = |V|/2 and
//! (b) a Barabási–Albert synthetic graph with |T| = 100, then fits the
//! log-log slope (paper: slope ≈ 1, scaling to one billion edges on
//! their hardware; scale up with PGS_SYNTH_NODES/PGS_SYNTH_DEG).
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig6_scalability
//! ```

use pgs_bench::{dataset, loglog_slope, sample_queries, timed};
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_graph::sample::node_sampled_subgraph;
use pgs_graph::Graph;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn sweep(label: &str, g: &Graph, target_count: Option<usize>) {
    println!("\n--- {label} ---");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "fraction", "|V|", "|E|", "time (s)"
    );
    let mut points = Vec::new();
    for step in 1..=10 {
        let frac = step as f64 / 10.0;
        let sub = node_sampled_subgraph(g, frac, 42 + step as u64);
        if sub.num_edges() == 0 {
            continue;
        }
        let budget = 0.5 * sub.size_bits();
        let targets = match target_count {
            Some(k) => sample_queries(&sub, k.min(sub.num_nodes()), 7),
            None => sample_queries(&sub, sub.num_nodes() / 2, 7),
        };
        let (_, secs) = timed(|| {
            summarize(
                &sub,
                &targets,
                budget,
                &PegasusConfig {
                    num_threads: pgs_bench::num_threads(),
                    ..Default::default()
                },
            )
        });
        println!(
            "{:>10.1} {:>12} {:>12} {:>12.3}",
            frac,
            sub.num_nodes(),
            sub.num_edges(),
            secs
        );
        points.push((sub.num_edges() as f64, secs));
    }
    println!(
        "log-log slope (1.0 = linear in |E|): {:.3}",
        loglog_slope(&points)
    );
}

fn main() {
    // (a)/(b): Skitter stand-in, |T| = 100 and |T| = |V|/2.
    let sk = dataset("SK");
    sweep("Skitter stand-in, |T| = 100", &sk.graph, Some(100));
    sweep("Skitter stand-in, |T| = |V|/2", &sk.graph, None);

    // (c): BA synthetic (paper: 10M nodes, 1B edges; default here is
    // laptop-sized — raise PGS_SYNTH_NODES / PGS_SYNTH_DEG to approach
    // the paper's scale, runtime grows linearly).
    let n = env_usize("PGS_SYNTH_NODES", 100_000);
    let m = env_usize("PGS_SYNTH_DEG", 10);
    println!("\ngenerating BA synthetic: {n} nodes, attachment {m}...");
    let ba = pgs_graph::gen::barabasi_albert(n, m, 9);
    sweep(
        &format!("BA synthetic ({} edges), |T| = 100", ba.num_edges()),
        &ba,
        Some(100),
    );
}
