//! Multi-tenant serving throughput experiment: replays the canonical
//! serving workload — N tenants, each sweeping M budgets over its own
//! target set — through `pgs_serve::SummaryService` and writes a
//! machine-readable `BENCH_serving.json` with end-to-end throughput,
//! p50/p99 submit-to-done latency, and the weight-cache hit rate (the
//! shared-BFS effect: each tenant's sweep resolves Eq.-2 weights once
//! and reuses them `M-1` times).
//!
//! ```text
//! cargo run --release --bin exp_serving [-- [--smoke] [out.json]
//!           [--metrics-dump m.json] [--events e.ndjson]]
//! PGS_SERVE_NODES=20000 PGS_SERVE_TENANTS=16 cargo run --release --bin exp_serving
//! ```
//!
//! `--smoke` shrinks everything for CI (and still asserts a non-zero
//! cache hit rate, so the serving path cannot silently rot). Knobs:
//! `PGS_SERVE_NODES` (default 6_000), `PGS_SERVE_DEG` (5),
//! `PGS_SERVE_TENANTS` (8), `PGS_SERVE_WORKERS` (0 = hardware
//! threads). Inner summarizer parallelism is pinned to 1 — the pool is
//! the concurrency axis under measurement.
//!
//! `PGS_SERVE_FAULT_SEED=<nonzero>` arms the chaos mode CI exercises:
//! the first submission carries a seeded `FaultPlan` that panics its
//! worker mid-run, the service retries it from the last checkpoint,
//! and the binary asserts every request still completes with at least
//! one recorded retry and zero errors.
//!
//! The measured pass runs with the full observability layer attached
//! (metrics registry, event ring, NDJSON event sink); a second bare
//! pass over the identical workload isolates the instrumentation
//! overhead, recorded as `observability.overhead_frac` (DESIGN.md §14
//! budgets it at ≤2%). The metrics dump and event stream are then
//! schema-checked: the binary fails on unknown, renamed, or missing
//! metric keys, malformed event lines, or non-increasing sequence
//! numbers — so a metric rename cannot slip past CI silently.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use pgs_bench::{env_or, timed};
use pgs_core::api::{Budget, Pegasus, SummarizeRequest};
use pgs_core::pegasus::PegasusConfig;
use pgs_core::FaultPlan;
use pgs_graph::gen::barabasi_albert;
use pgs_graph::Graph;
use pgs_observe::Json;
use pgs_serve::{ServiceConfig, SubmitRequest, SummaryHandle, SummaryService};

/// The stable metric key sets of DESIGN.md §14. Renaming or adding a
/// key without updating these lists (and the docs) fails the bench.
const EXPECTED_COUNTERS: &[&str] = &[
    "engine.evals",
    "engine.iterations",
    "engine.merges",
    "engine.phase.candidates_us",
    "engine.phase.commit_us",
    "engine.phase.evaluate_us",
    "engine.phase.sparsify_us",
    "serve.cache.hits",
    "serve.cache.misses",
    "serve.jobs.completed",
    "serve.jobs.errors",
    "serve.jobs.quarantined",
    "serve.jobs.rejected",
    "serve.jobs.replayed",
    "serve.jobs.retried",
    "serve.jobs.shed",
    "serve.jobs.stalled",
    "serve.jobs.submitted",
];
const EXPECTED_GAUGES: &[&str] = &["serve.jobs.running", "serve.queue.depth"];
const EXPECTED_HISTOGRAMS: &[&str] = &["serve.latency.run_us", "serve.latency.wait_us"];
const EXPECTED_SNAPSHOT_KEYS: &[&str] = &[
    "cache",
    "event_seq",
    "journal",
    "metrics",
    "queued",
    "running",
    "tenants",
    "workers",
];
const EVENT_KINDS: &[&str] = &[
    "admitted",
    "replayed",
    "queued",
    "running",
    "checkpointed",
    "retried",
    "shed",
    "rejected",
    "stalled",
    "quarantined",
    "completed",
];

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct Workload {
    nodes: usize,
    tenants: usize,
    workers: usize,
    fault_seed: u64,
    budgets: Vec<f64>,
}

struct Pass {
    svc: SummaryService,
    wall_secs: f64,
    latencies: Vec<f64>,
}

/// One full replay of the workload through a fresh service. Budget-
/// major submission order (every tenant's first ratio, then every
/// second, …): adjacent submissions belong to *different* tenants, the
/// adversarial interleaving for the per-tenant cache.
fn run_pass(g: &Arc<Graph>, w: &Workload, events_path: Option<PathBuf>) -> Pass {
    let svc = SummaryService::new(
        Arc::clone(g),
        Arc::new(Pegasus(PegasusConfig {
            num_threads: 1,
            ..Default::default()
        })),
        ServiceConfig {
            workers: w.workers,
            // Retry is free when nothing panics; arming it even in the
            // clean run keeps the measured path honest about its cost.
            retry_budget: 2,
            retry_backoff: std::time::Duration::from_millis(1),
            events_path,
            ..Default::default()
        },
    );
    let (handles, submit_secs): (Vec<SummaryHandle>, f64) = timed(|| {
        w.budgets
            .iter()
            .flat_map(|&ratio| {
                (0..w.tenants).map(move |t| (ratio, t)).map(|(ratio, t)| {
                    let targets: Vec<u32> = (0..3)
                        .map(|k| ((t * 131 + k * 17) % w.nodes) as u32)
                        .collect();
                    let mut req = SummarizeRequest::new(Budget::Ratio(ratio)).targets(&targets);
                    if w.fault_seed != 0 && t == 0 && ratio == w.budgets[0] {
                        req = req.fault_plan(Arc::new(FaultPlan::seeded_panic(w.fault_seed, 6)));
                    }
                    svc.submit(SubmitRequest::new(format!("tenant-{t:02}"), req))
                        .expect("unbounded queues admit everything")
                })
            })
            .collect()
    });
    let (latencies, wall_secs) = timed(|| {
        let mut lat: Vec<f64> = handles
            .iter()
            .map(|h| {
                h.wait().expect("valid request");
                h.timings().expect("finished").total_secs()
            })
            .collect();
        lat.sort_by(f64::total_cmp);
        lat
    });
    Pass {
        svc,
        wall_secs: wall_secs + submit_secs,
        latencies,
    }
}

/// Exact-set key check: unknown keys are as fatal as missing ones, so
/// a metric rename breaks the bench instead of silently forking the
/// schema consumers depend on.
fn assert_exact_keys(section: &Json, expected: &[&str], what: &str) {
    let mut keys: Vec<&str> = section.keys();
    keys.sort_unstable();
    let missing: Vec<&&str> = expected.iter().filter(|k| !keys.contains(k)).collect();
    let unknown: Vec<&&str> = keys.iter().filter(|k| !expected.contains(k)).collect();
    assert!(
        missing.is_empty() && unknown.is_empty(),
        "{what}: schema drift — missing {missing:?}, unknown {unknown:?} \
         (update DESIGN.md §14 and EXPECTED_* in exp_serving if intentional)"
    );
}

/// Validate the metrics dump against the stable §14 shape.
fn validate_metrics_dump(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("reading metrics dump");
    let root = Json::parse(&text).expect("metrics dump must be valid JSON");
    assert_exact_keys(&root, EXPECTED_SNAPSHOT_KEYS, "snapshot");
    let metrics = root.get("metrics").expect("snapshot.metrics");
    let counters = metrics.get("counters").expect("metrics.counters");
    assert_exact_keys(counters, EXPECTED_COUNTERS, "counters");
    let gauges = metrics.get("gauges").expect("metrics.gauges");
    assert_exact_keys(gauges, EXPECTED_GAUGES, "gauges");
    let hists = metrics.get("histograms").expect("metrics.histograms");
    assert_exact_keys(hists, EXPECTED_HISTOGRAMS, "histograms");
    for key in EXPECTED_HISTOGRAMS {
        let h = hists.get(key).expect("histogram entry");
        let bounds = h.get("bounds").and_then(Json::as_arr).expect("bounds");
        let counts = h.get("counts").and_then(Json::as_arr).expect("counts");
        assert_eq!(
            counts.len(),
            bounds.len() + 1,
            "{key}: counts must carry one overflow bucket"
        );
    }
    for t in root.get("tenants").and_then(Json::as_arr).expect("tenants") {
        for key in ["tenant", "submitted", "completed", "wait_secs", "run_secs"] {
            assert!(t.get(key).is_some(), "tenant entry missing {key:?}");
        }
    }
}

/// Validate the NDJSON event stream: every line parses, carries the
/// documented fields, names a known kind, and seq strictly increases
/// (ring order == sink order == seq order).
fn validate_events(path: &std::path::Path) -> u64 {
    let text = std::fs::read_to_string(path).expect("reading event stream");
    let mut last_seq = 0u64;
    let mut lines = 0u64;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let ev = Json::parse(line).expect("event line must be valid JSON");
        let seq = ev.get("seq").and_then(Json::as_f64).expect("event.seq") as u64;
        assert!(seq > last_seq, "event seq must strictly increase");
        last_seq = seq;
        let kind = ev.get("kind").and_then(Json::as_str).expect("event.kind");
        assert!(EVENT_KINDS.contains(&kind), "unknown event kind {kind:?}");
        for key in ["job", "tenant", "attempt"] {
            assert!(ev.get(key).is_some(), "event missing {key:?}");
        }
        lines += 1;
    }
    assert!(lines > 0, "event stream must not be empty");
    lines
}

fn main() {
    let mut out_path = "BENCH_serving.json".to_string();
    let mut smoke = false;
    let mut metrics_path: Option<PathBuf> = None;
    let mut events_path: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--metrics-dump" => {
                metrics_path = Some(PathBuf::from(
                    it.next().expect("--metrics-dump needs a path"),
                ));
            }
            "--events" => {
                events_path = Some(PathBuf::from(it.next().expect("--events needs a path")));
            }
            _ => out_path = arg,
        }
    }
    // The sinks are part of what the measured pass measures: default
    // them into the temp dir when not routed somewhere explicit.
    let metrics_path =
        metrics_path.unwrap_or_else(|| std::env::temp_dir().join("exp_serving_metrics.json"));
    let events_path =
        events_path.unwrap_or_else(|| std::env::temp_dir().join("exp_serving_events.ndjson"));

    let w = Workload {
        nodes: env_or("PGS_SERVE_NODES", if smoke { 1_200 } else { 6_000 }),
        tenants: env_or("PGS_SERVE_TENANTS", if smoke { 3 } else { 8 }),
        workers: env_or("PGS_SERVE_WORKERS", 0),
        // 0 = no fault injection; any other value seeds a worker-panic
        // plan on the first submission (recovered via checkpoint retry).
        fault_seed: env_or("PGS_SERVE_FAULT_SEED", 0),
        budgets: if smoke {
            vec![0.6, 0.4]
        } else {
            vec![0.7, 0.55, 0.4, 0.25]
        },
    };
    let deg: usize = env_or("PGS_SERVE_DEG", 5);

    let (g, gen_secs) = timed(|| Arc::new(barabasi_albert(w.nodes, deg, 42)));
    eprintln!(
        "# graph: |V| = {}, |E| = {}; {} tenants × {} budgets; \
         workers {} (hardware {}); generated in {gen_secs:.2}s",
        g.num_nodes(),
        g.num_edges(),
        w.tenants,
        w.budgets.len(),
        w.workers,
        rayon::current_num_threads()
    );

    // Measured pass: full observability attached (registry is always
    // on; this adds the event ring + NDJSON sink).
    let instr = run_pass(&g, &w, Some(events_path.clone()));
    std::fs::write(&metrics_path, instr.svc.metrics_snapshot().to_json())
        .expect("writing metrics dump");
    // Bare pass: identical workload, ring only, no sinks — the delta
    // is the observability overhead DESIGN.md §14 budgets at ≤2%.
    let bare = run_pass(&g, &w, None);
    let overhead_frac = (instr.wall_secs - bare.wall_secs) / bare.wall_secs.max(1e-12);

    let total = instr.latencies.len();
    let throughput = total as f64 / instr.wall_secs.max(1e-12);
    let cache = instr.svc.cache_stats();
    let (p50, p99) = (
        percentile(&instr.latencies, 0.50),
        percentile(&instr.latencies, 0.99),
    );
    let mean = instr.latencies.iter().sum::<f64>() / total as f64;

    eprintln!(
        "# {total} requests in {:.2}s: {throughput:.2} req/s; latency \
         p50 {p50:.3}s p99 {p99:.3}s mean {mean:.3}s; cache {} hits / {} misses \
         (hit rate {:.3}); observability overhead {:+.2}% (bare {:.2}s)",
        instr.wall_secs,
        cache.hits,
        cache.misses,
        cache.hit_rate(),
        overhead_frac * 100.0,
        bare.wall_secs,
    );
    // The shared-BFS invariant this binary guards in CI: each tenant's
    // sweep resolves one BFS and hits the cache for every other budget.
    assert_eq!(cache.misses, w.tenants as u64, "one BFS per tenant");
    assert_eq!(
        cache.hits,
        (w.tenants * (w.budgets.len() - 1)) as u64,
        "every later budget in a sweep must hit"
    );
    assert!(cache.hit_rate() > 0.0, "cache hit rate must be > 0");

    let tenant_stats = instr.svc.tenant_stats();
    for s in &tenant_stats {
        assert_eq!(
            s.completed,
            w.budgets.len() as u64,
            "{} terminated",
            s.tenant
        );
        assert_eq!(s.errors, 0, "{} must not surface errors", s.tenant);
    }
    let total_retries: u64 = tenant_stats.iter().map(|s| s.retries).sum();
    if w.fault_seed != 0 {
        assert!(
            total_retries >= 1,
            "fault seed {} must force at least one retry",
            w.fault_seed
        );
        eprintln!(
            "# fault seed {}: recovered via {total_retries} retry attempt(s)",
            w.fault_seed
        );
    }

    // Schema checks: fail loudly on drift, before the JSON is written.
    validate_metrics_dump(&metrics_path);
    let event_lines = validate_events(&events_path);
    eprintln!(
        "# validated metrics dump ({}) and {event_lines} event line(s) ({})",
        metrics_path.display(),
        events_path.display()
    );

    // Hand-rolled JSON (the workspace is offline — no serde).
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"serving_throughput\",").unwrap();
    writeln!(json, "  \"smoke\": {smoke},").unwrap();
    writeln!(json, "  \"graph\": {{").unwrap();
    writeln!(json, "    \"generator\": \"barabasi_albert\",").unwrap();
    writeln!(json, "    \"nodes\": {},", g.num_nodes()).unwrap();
    writeln!(json, "    \"edges\": {},", g.num_edges()).unwrap();
    writeln!(json, "    \"seed\": 42").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"tenants\": {},", w.tenants).unwrap();
    writeln!(json, "  \"budgets\": {:?},", w.budgets).unwrap();
    writeln!(json, "  \"workers\": {},", w.workers).unwrap();
    writeln!(json, "  \"fault_seed\": {},", w.fault_seed).unwrap();
    writeln!(json, "  \"retries\": {total_retries},").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        rayon::current_num_threads()
    )
    .unwrap();
    writeln!(json, "  \"requests\": {total},").unwrap();
    writeln!(json, "  \"wall_secs\": {:.4},", instr.wall_secs).unwrap();
    writeln!(json, "  \"throughput_req_per_sec\": {throughput:.4},").unwrap();
    writeln!(json, "  \"latency_secs\": {{").unwrap();
    writeln!(json, "    \"p50\": {p50:.5},").unwrap();
    writeln!(json, "    \"p99\": {p99:.5},").unwrap();
    writeln!(json, "    \"mean\": {mean:.5}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"observability\": {{").unwrap();
    writeln!(
        json,
        "    \"instrumented_wall_secs\": {:.4},",
        instr.wall_secs
    )
    .unwrap();
    writeln!(json, "    \"bare_wall_secs\": {:.4},", bare.wall_secs).unwrap();
    writeln!(json, "    \"overhead_frac\": {overhead_frac:.4},").unwrap();
    writeln!(json, "    \"event_lines\": {event_lines}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"cache\": {{").unwrap();
    writeln!(json, "    \"hits\": {},", cache.hits).unwrap();
    writeln!(json, "    \"misses\": {},", cache.misses).unwrap();
    writeln!(json, "    \"hit_rate\": {:.4}", cache.hit_rate()).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"tenants_detail\": [").unwrap();
    for (i, s) in tenant_stats.iter().enumerate() {
        let comma = if i + 1 < tenant_stats.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"tenant\": \"{}\", \"completed\": {}, \"budget_met\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"wait_secs\": {:.4}, \
             \"run_secs\": {:.4}}}{comma}",
            s.tenant,
            s.completed,
            s.budget_met,
            s.cache_hits,
            s.cache_misses,
            s.wait_secs,
            s.run_secs
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("writing BENCH_serving.json");
    eprintln!("# wrote {out_path}");
    println!("{json}");
}
