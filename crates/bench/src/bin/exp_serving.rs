//! Multi-tenant serving throughput experiment: replays the canonical
//! serving workload — N tenants, each sweeping M budgets over its own
//! target set — through `pgs_serve::SummaryService` and writes a
//! machine-readable `BENCH_serving.json` with end-to-end throughput,
//! p50/p99 submit-to-done latency, and the weight-cache hit rate (the
//! shared-BFS effect: each tenant's sweep resolves Eq.-2 weights once
//! and reuses them `M-1` times).
//!
//! ```text
//! cargo run --release --bin exp_serving [-- [--smoke] <out.json>]
//! PGS_SERVE_NODES=20000 PGS_SERVE_TENANTS=16 cargo run --release --bin exp_serving
//! ```
//!
//! `--smoke` shrinks everything for CI (and still asserts a non-zero
//! cache hit rate, so the serving path cannot silently rot). Knobs:
//! `PGS_SERVE_NODES` (default 6_000), `PGS_SERVE_DEG` (5),
//! `PGS_SERVE_TENANTS` (8), `PGS_SERVE_WORKERS` (0 = hardware
//! threads). Inner summarizer parallelism is pinned to 1 — the pool is
//! the concurrency axis under measurement.
//!
//! `PGS_SERVE_FAULT_SEED=<nonzero>` arms the chaos mode CI exercises:
//! the first submission carries a seeded `FaultPlan` that panics its
//! worker mid-run, the service retries it from the last checkpoint,
//! and the binary asserts every request still completes with at least
//! one recorded retry and zero errors.

use std::fmt::Write as _;
use std::sync::Arc;

use pgs_bench::{env_or, timed};
use pgs_core::api::{Budget, Pegasus, SummarizeRequest};
use pgs_core::pegasus::PegasusConfig;
use pgs_core::FaultPlan;
use pgs_graph::gen::barabasi_albert;
use pgs_serve::{ServiceConfig, SubmitRequest, SummaryHandle, SummaryService};

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let mut out_path = "BENCH_serving.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let nodes: usize = env_or("PGS_SERVE_NODES", if smoke { 1_200 } else { 6_000 });
    let deg: usize = env_or("PGS_SERVE_DEG", 5);
    let tenants: usize = env_or("PGS_SERVE_TENANTS", if smoke { 3 } else { 8 });
    let workers: usize = env_or("PGS_SERVE_WORKERS", 0);
    // 0 = no fault injection; any other value seeds a worker-panic
    // plan on the first submission (recovered via checkpoint retry).
    let fault_seed: u64 = env_or("PGS_SERVE_FAULT_SEED", 0);
    let budgets: &[f64] = if smoke {
        &[0.6, 0.4]
    } else {
        &[0.7, 0.55, 0.4, 0.25]
    };

    let (g, gen_secs) = timed(|| Arc::new(barabasi_albert(nodes, deg, 42)));
    eprintln!(
        "# graph: |V| = {}, |E| = {}; {tenants} tenants × {} budgets; \
         workers {workers} (hardware {}); generated in {gen_secs:.2}s",
        g.num_nodes(),
        g.num_edges(),
        budgets.len(),
        rayon::current_num_threads()
    );

    let svc = SummaryService::new(
        Arc::clone(&g),
        Arc::new(Pegasus(PegasusConfig {
            num_threads: 1,
            ..Default::default()
        })),
        ServiceConfig {
            workers,
            // Retry is free when nothing panics; arming it even in the
            // clean run keeps the measured path honest about its cost.
            retry_budget: 2,
            retry_backoff: std::time::Duration::from_millis(1),
            ..Default::default()
        },
    );

    // Submit budget-major (every tenant's ratio-0.7 request, then every
    // ratio-0.55, …): adjacent submissions belong to *different*
    // tenants, the adversarial interleaving for the per-tenant cache.
    let (handles, submit_secs): (Vec<SummaryHandle>, f64) = timed(|| {
        budgets
            .iter()
            .flat_map(|&ratio| {
                (0..tenants).map(move |t| (ratio, t)).map(|(ratio, t)| {
                    let targets: Vec<u32> = (0..3)
                        .map(|k| ((t * 131 + k * 17) % nodes) as u32)
                        .collect();
                    let mut req = SummarizeRequest::new(Budget::Ratio(ratio)).targets(&targets);
                    if fault_seed != 0 && t == 0 && ratio == budgets[0] {
                        req = req.fault_plan(Arc::new(FaultPlan::seeded_panic(fault_seed, 6)));
                    }
                    svc.submit(SubmitRequest::new(format!("tenant-{t:02}"), req))
                        .expect("unbounded queues admit everything")
                })
            })
            .collect()
    });

    let (latencies, wall_secs) = timed(|| {
        let mut lat: Vec<f64> = handles
            .iter()
            .map(|h| {
                h.wait().expect("valid request");
                h.timings().expect("finished").total_secs()
            })
            .collect();
        lat.sort_by(f64::total_cmp);
        lat
    });
    let wall_secs = wall_secs + submit_secs;
    let total = handles.len();
    let throughput = total as f64 / wall_secs.max(1e-12);
    let cache = svc.cache_stats();
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    let mean = latencies.iter().sum::<f64>() / total as f64;

    eprintln!(
        "# {total} requests in {wall_secs:.2}s: {throughput:.2} req/s; latency \
         p50 {p50:.3}s p99 {p99:.3}s mean {mean:.3}s; cache {} hits / {} misses \
         (hit rate {:.3})",
        cache.hits,
        cache.misses,
        cache.hit_rate()
    );
    // The shared-BFS invariant this binary guards in CI: each tenant's
    // sweep resolves one BFS and hits the cache for every other budget.
    assert_eq!(cache.misses, tenants as u64, "one BFS per tenant");
    assert_eq!(
        cache.hits,
        (tenants * (budgets.len() - 1)) as u64,
        "every later budget in a sweep must hit"
    );
    assert!(cache.hit_rate() > 0.0, "cache hit rate must be > 0");

    let tenant_stats = svc.tenant_stats();
    for s in &tenant_stats {
        assert_eq!(s.completed, budgets.len() as u64, "{} terminated", s.tenant);
        assert_eq!(s.errors, 0, "{} must not surface errors", s.tenant);
    }
    let total_retries: u64 = tenant_stats.iter().map(|s| s.retries).sum();
    if fault_seed != 0 {
        assert!(
            total_retries >= 1,
            "fault seed {fault_seed} must force at least one retry"
        );
        eprintln!("# fault seed {fault_seed}: recovered via {total_retries} retry attempt(s)");
    }

    // Hand-rolled JSON (the workspace is offline — no serde).
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"serving_throughput\",").unwrap();
    writeln!(json, "  \"smoke\": {smoke},").unwrap();
    writeln!(json, "  \"graph\": {{").unwrap();
    writeln!(json, "    \"generator\": \"barabasi_albert\",").unwrap();
    writeln!(json, "    \"nodes\": {},", g.num_nodes()).unwrap();
    writeln!(json, "    \"edges\": {},", g.num_edges()).unwrap();
    writeln!(json, "    \"seed\": 42").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"tenants\": {tenants},").unwrap();
    writeln!(json, "  \"budgets\": {budgets:?},").unwrap();
    writeln!(json, "  \"workers\": {workers},").unwrap();
    writeln!(json, "  \"fault_seed\": {fault_seed},").unwrap();
    writeln!(json, "  \"retries\": {total_retries},").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        rayon::current_num_threads()
    )
    .unwrap();
    writeln!(json, "  \"requests\": {total},").unwrap();
    writeln!(json, "  \"wall_secs\": {wall_secs:.4},").unwrap();
    writeln!(json, "  \"throughput_req_per_sec\": {throughput:.4},").unwrap();
    writeln!(json, "  \"latency_secs\": {{").unwrap();
    writeln!(json, "    \"p50\": {p50:.5},").unwrap();
    writeln!(json, "    \"p99\": {p99:.5},").unwrap();
    writeln!(json, "    \"mean\": {mean:.5}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"cache\": {{").unwrap();
    writeln!(json, "    \"hits\": {},", cache.hits).unwrap();
    writeln!(json, "    \"misses\": {},", cache.misses).unwrap();
    writeln!(json, "    \"hit_rate\": {:.4}", cache.hit_rate()).unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"tenants_detail\": [").unwrap();
    for (i, s) in tenant_stats.iter().enumerate() {
        let comma = if i + 1 < tenant_stats.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"tenant\": \"{}\", \"completed\": {}, \"budget_met\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"wait_secs\": {:.4}, \
             \"run_secs\": {:.4}}}{comma}",
            s.tenant,
            s.completed,
            s.budget_met,
            s.cache_hits,
            s.cache_misses,
            s.wait_secs,
            s.run_secs
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("writing BENCH_serving.json");
    eprintln!("# wrote {out_path}");
    println!("{json}");
}
