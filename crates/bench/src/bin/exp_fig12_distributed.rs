//! Fig. 2(c) + Fig. 12 — "communication-free" distributed multi-query
//! answering: personalized summaries vs a replicated non-personalized
//! summary vs partitioned subgraphs, on 8 simulated machines.
//!
//! For each dataset and per-machine compression ratio: build the
//! cluster with each backend, route each query to its machine (Alg. 3),
//! and score RWR/HOP answers against the exact answers on the full
//! graph.
//!
//! Expected shape (paper): PeGaSus most accurate in almost all
//! settings; SSumM (one summary for everyone) clearly behind; the five
//! partitioned-subgraph baselines in between, strong at small distances
//! but blind outside their partition.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig12_distributed
//! ```

use pgs_bench::{dataset, num_queries, sample_queries, GroundTruth, QueryType};
use pgs_core::{PegasusConfig, SsummConfig};
use pgs_distributed::{Backend, Cluster};
use pgs_partition::Method;

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if names.is_empty() {
        vec!["LA", "CA", "DB"]
    } else {
        names.iter().map(|s| s.as_str()).collect()
    };
    let machines = 8;
    let ratios = [0.2, 0.4, 0.6, 0.8];

    for name in names {
        let d = dataset(name);
        let g = &d.graph;
        let queries = sample_queries(g, num_queries(), 29);
        println!(
            "\n=== Fig. 12: {} ({} nodes, {} edges, {machines} machines, |Q|={}) ===",
            d.name,
            g.num_nodes(),
            g.num_edges(),
            queries.len()
        );
        let truths: Vec<GroundTruth> = [QueryType::Rwr, QueryType::Hop]
            .iter()
            .map(|&qt| GroundTruth::compute(g, &queries, qt))
            .collect();

        println!(
            "{:<10} {:>6} | {:>8} {:>8} | {:>8} {:>8}",
            "backend", "ratio", "RWR sm", "RWR sc", "HOP sm", "HOP sc"
        );
        for &ratio in &ratios {
            let budget = ratio * g.size_bits();
            let backends: Vec<(&str, Backend)> = vec![
                (
                    "PeGaSus",
                    Backend::Pegasus(PegasusConfig {
                        num_threads: pgs_bench::num_threads(),
                        ..Default::default()
                    }),
                ),
                (
                    "SSumM",
                    Backend::Ssumm(SsummConfig {
                        num_threads: pgs_bench::num_threads(),
                        ..Default::default()
                    }),
                ),
                ("Louvain", Backend::Subgraph(Method::Louvain)),
                ("BLP", Backend::Subgraph(Method::Blp)),
                ("SHPI", Backend::Subgraph(Method::ShpI)),
                ("SHPII", Backend::Subgraph(Method::ShpII)),
                ("SHPKL", Backend::Subgraph(Method::ShpKL)),
            ];
            for (label, backend) in backends {
                let cluster = Cluster::build(g, machines, budget, &backend, 31);
                let mut row = format!("{label:<10} {ratio:>6.1} |");
                for gt in &truths {
                    let (sm, sc) = gt.score_cluster(&cluster);
                    row += &format!(" {sm:>8.3} {sc:>8.3} |");
                }
                println!("{}", row.trim_end_matches(" |"));
            }
        }
    }
}
