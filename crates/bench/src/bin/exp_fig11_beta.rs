//! Fig. 11 — effect of the adaptive-thresholding parameter β.
//!
//! β ∈ {≈0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9} at compression ratios
//! 0.3 and 0.5, averaged over datasets (α fixed at 1.25, |T| = queries).
//!
//! Expected shape (paper): β = 0.1 best in the majority of cases;
//! accuracy insensitive to β unless it is very close to 0 or 1.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig11_beta
//! ```

use pgs_bench::{dataset, num_queries, sample_queries, GroundTruth, QueryType};
use pgs_core::pegasus::{summarize, PegasusConfig};

fn main() {
    let names = ["LA", "CA", "DB"];
    let betas = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9];

    for ratio in [0.3, 0.5] {
        println!("\n=== Fig. 11: compression ratio {ratio}, averaged over {names:?} ===");
        println!(
            "{:<12} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
            "config", "RWR sm", "RWR sc", "HOP sm", "HOP sc", "PHP sm", "PHP sc"
        );
        let mut acc = vec![[0.0f64; 6]; betas.len()];
        for name in names {
            let d = dataset(name);
            let g = &d.graph;
            let queries = sample_queries(g, num_queries(), 23);
            let truths: Vec<GroundTruth> = QueryType::ALL
                .iter()
                .map(|&qt| GroundTruth::compute(g, &queries, qt))
                .collect();
            let budget = ratio * g.size_bits();
            for (bi, &beta) in betas.iter().enumerate() {
                let cfg = PegasusConfig {
                    num_threads: pgs_bench::num_threads(),
                    beta,
                    ..Default::default()
                };
                let s = summarize(g, &queries, budget, &cfg);
                for (qi, gt) in truths.iter().enumerate() {
                    let (sm, sc) = gt.score_summary(&s);
                    acc[bi][2 * qi] += sm;
                    acc[bi][2 * qi + 1] += sc;
                }
            }
        }
        let dn = names.len() as f64;
        for (bi, &beta) in betas.iter().enumerate() {
            let label = if beta == 0.0 {
                "beta~0".to_string()
            } else {
                format!("beta={beta}")
            };
            println!(
                "{:<12} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
                label,
                acc[bi][0] / dn,
                acc[bi][1] / dn,
                acc[bi][2] / dn,
                acc[bi][3] / dn,
                acc[bi][4] / dn,
                acc[bi][5] / dn
            );
        }
    }
}
