//! Query-serving throughput: legacy per-call answering vs one reused
//! [`QueryEngine`] plan vs `Exec`-batched serving, per query type.
//!
//! Three contenders answer the same query batch on the same summary:
//!
//! * **legacy** — one [`pgs_queries::reference`] call per query: the
//!   per-node path that recomputes weighted degrees and reallocates all
//!   `|V|`-sized buffers on every call.
//! * **plan** — one `QueryEngine` built once (build time included),
//!   then queried serially: collapsed `O(|S| + |P|)` iterations from
//!   recycled scratch.
//! * **batched** — the same engine's `*_batch` fan-out over
//!   `Exec::new(t)` for each thread count; asserted bitwise identical
//!   to the serial plan answers.
//!
//! Writes a machine-readable `BENCH_queries.json` (queries/sec and
//! speedups per query type) so future PRs can track the serving-path
//! trajectory. On a 1-core container the batched rows bound fan-out
//! overhead rather than demonstrating scaling — see DESIGN.md §6.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_query_throughput [-- <out.json>]
//! ```
//!
//! Knobs: `PGS_QT_NODES` (default 3_000), `PGS_QT_DEG` (default 7),
//! `PGS_QT_RATIO` (default 0.15), `PGS_QT_QUERIES` (default 256),
//! `PGS_QT_TARGETS` (default 32 — the personalization subset, a prefix
//! of the query sample, per the paper's serving setting), and
//! `PGS_QT_THREADS` (comma list, default `1,2,4,8`).

use std::fmt::Write as _;

use pgs_bench::{env_or, sample_queries, timed};
use pgs_core::exec::Exec;
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_graph::gen::planted_partition;
use pgs_graph::NodeId;
use pgs_queries::{reference, QueryEngine, PHP_DECAY, RWR_RESTART};

/// One per-query answering closure (legacy path, or through an engine).
type LegacyFn<'a> = dyn Fn(NodeId) -> Vec<f64> + 'a;
type EngineFn<'a> = dyn Fn(&QueryEngine, NodeId) -> Vec<f64> + 'a;
type BatchFn<'a> = dyn Fn(&QueryEngine, &[NodeId], &Exec) -> Vec<Vec<f64>> + 'a;

struct Contender {
    name: &'static str,
    secs: f64,
    qps: f64,
}

struct TypeResult {
    qtype: &'static str,
    rows: Vec<Contender>,
    plan_build_secs: f64,
    speedup_plan_vs_legacy: f64,
    /// Per thread count: queries/sec and speedup vs the serial query
    /// loop on the same prebuilt engine (build time excluded on both
    /// sides).
    batched: Vec<(usize, f64, f64)>,
    batched_identical: bool,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_queries.json".to_string());
    let nodes: usize = env_or("PGS_QT_NODES", 3_000);
    let deg: usize = env_or("PGS_QT_DEG", 7);
    let ratio: f64 = env_or("PGS_QT_RATIO", 0.15);
    let num_queries: usize = env_or("PGS_QT_QUERIES", 256);
    let num_targets: usize = env_or("PGS_QT_TARGETS", 32);
    let threads_list: Vec<usize> = std::env::var("PGS_QT_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();

    let communities = (nodes / 100).max(2);
    let g = planted_partition(nodes, communities, nodes * deg, nodes, 11);
    let queries = sample_queries(&g, num_queries, 17);
    let budget = ratio * g.size_bits();
    let cfg = PegasusConfig {
        num_threads: pgs_bench::num_threads(),
        ..Default::default()
    };
    // Personalize to a prefix of the query sample: the summary favors
    // those users' neighborhoods and compresses the rest aggressively —
    // the serving regime the plan-reuse engine targets.
    let targets = &queries[..num_targets.min(queries.len())];
    let (s, build_secs) = timed(|| summarize(&g, targets, budget, &cfg));
    eprintln!(
        "# graph |V|={} |E|={}; summary |S|={} |P|={} (ratio {:.2}, built in {build_secs:.1}s); \
         {} queries; hardware threads {}",
        g.num_nodes(),
        g.num_edges(),
        s.num_supernodes(),
        s.num_superedges(),
        s.size_bits() / g.size_bits(),
        queries.len(),
        rayon::current_num_threads()
    );

    let run = |qtype: &'static str,
               legacy: &LegacyFn,
               engine_q: &EngineFn,
               engine_batch: &BatchFn|
     -> TypeResult {
        let (legacy_out, legacy_secs) = timed(|| {
            queries
                .iter()
                .map(|&q| legacy(q))
                .collect::<Vec<Vec<f64>>>()
        });
        // Plan contender: one-time engine construction is timed
        // separately and charged to the plan total (the fair comparison
        // against legacy), but NOT to the serial-queries baseline the
        // batched rows are compared against — the batched runs reuse
        // the same prebuilt engine.
        let (engine, build_secs) = timed(|| QueryEngine::new(&s));
        let (plan_out, serial_secs) = timed(|| {
            queries
                .iter()
                .map(|&q| engine_q(&engine, q))
                .collect::<Vec<Vec<f64>>>()
        });
        let plan_secs = build_secs + serial_secs;
        assert_eq!(legacy_out.len(), plan_out.len());
        let nq = queries.len() as f64;
        let mut batched = Vec::new();
        let mut identical = true;
        for &t in &threads_list {
            let exec = Exec::new(t);
            let (out, secs) = timed(|| engine_batch(&engine, &queries, &exec));
            identical &= out.iter().zip(&plan_out).all(|(a, b)| {
                a.iter()
                    .map(|x| x.to_bits())
                    .eq(b.iter().map(|x| x.to_bits()))
            });
            batched.push((t, nq / secs, serial_secs / secs));
        }
        let res = TypeResult {
            qtype,
            rows: vec![
                Contender {
                    name: "legacy_per_call",
                    secs: legacy_secs,
                    qps: nq / legacy_secs,
                },
                Contender {
                    name: "plan_reuse_serial",
                    secs: plan_secs,
                    qps: nq / plan_secs,
                },
            ],
            plan_build_secs: build_secs,
            speedup_plan_vs_legacy: legacy_secs / plan_secs,
            batched,
            batched_identical: identical,
        };
        eprintln!(
            "# {qtype:>4}: legacy {:>8.1} q/s | plan {:>8.1} q/s ({:.2}x) | batched identical: {}",
            res.rows[0].qps, res.rows[1].qps, res.speedup_plan_vs_legacy, identical
        );
        res
    };

    let to_f64 = |h: Vec<u32>| -> Vec<f64> { h.into_iter().map(f64::from).collect() };
    let results = vec![
        run(
            "rwr",
            &|q| reference::rwr_summary(&s, q, RWR_RESTART),
            &|e, q| e.rwr(q, RWR_RESTART),
            &|e, qs, exec| e.rwr_batch(qs, RWR_RESTART, exec),
        ),
        run(
            "hop",
            &|q| to_f64(reference::hops_summary(&s, q)),
            &|e, q| to_f64(e.hops(q)),
            &|e, qs, exec| {
                e.hops_batch(qs, exec)
                    .into_iter()
                    .map(to_f64)
                    .collect::<Vec<_>>()
            },
        ),
        run(
            "php",
            &|q| reference::php_summary(&s, q, PHP_DECAY),
            &|e, q| e.php(q, PHP_DECAY),
            &|e, qs, exec| e.php_batch(qs, PHP_DECAY, exec),
        ),
    ];

    // Hand-rolled JSON (the workspace is offline — no serde).
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"query_throughput\",").unwrap();
    writeln!(json, "  \"graph\": {{").unwrap();
    writeln!(json, "    \"generator\": \"planted_partition\",").unwrap();
    writeln!(json, "    \"nodes\": {},", g.num_nodes()).unwrap();
    writeln!(json, "    \"edges\": {},", g.num_edges()).unwrap();
    writeln!(json, "    \"budget_ratio\": {ratio}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(
        json,
        "  \"summary\": {{\"supernodes\": {}, \"superedges\": {}}},",
        s.num_supernodes(),
        s.num_superedges()
    )
    .unwrap();
    writeln!(json, "  \"num_queries\": {},", queries.len()).unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        rayon::current_num_threads()
    )
    .unwrap();
    writeln!(json, "  \"types\": [").unwrap();
    for (i, r) in results.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"type\": \"{}\",", r.qtype).unwrap();
        for c in &r.rows {
            writeln!(
                json,
                "      \"{}\": {{\"wall_secs\": {:.4}, \"queries_per_sec\": {:.1}}},",
                c.name, c.secs, c.qps
            )
            .unwrap();
        }
        writeln!(json, "      \"plan_build_secs\": {:.4},", r.plan_build_secs).unwrap();
        writeln!(
            json,
            "      \"speedup_plan_reuse_vs_legacy\": {:.4},",
            r.speedup_plan_vs_legacy
        )
        .unwrap();
        writeln!(
            json,
            "      \"batched_identical_to_serial\": {},",
            r.batched_identical
        )
        .unwrap();
        writeln!(json, "      \"batched\": [").unwrap();
        for (j, (t, qps, sp)) in r.batched.iter().enumerate() {
            let comma = if j + 1 < r.batched.len() { "," } else { "" };
            writeln!(
                json,
                "        {{\"threads\": {t}, \"queries_per_sec\": {qps:.1}, \
                 \"speedup_vs_plan_serial\": {sp:.4}}}{comma}"
            )
            .unwrap();
        }
        writeln!(json, "      ]").unwrap();
        let comma = if i + 1 < results.len() { "," } else { "" };
        writeln!(json, "    }}{comma}").unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("writing BENCH_queries.json");
    eprintln!("# wrote {out_path}");
    println!("{json}");

    for r in &results {
        assert!(
            r.batched_identical,
            "{}: batched answers diverged from serial",
            r.qtype
        );
    }
}
