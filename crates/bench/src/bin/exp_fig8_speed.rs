//! Fig. 8 — summarization time and query time per method at
//! compression ratio 0.5.
//!
//! (a) wall time to summarize; (b) BFS (HOP) query time on each output;
//! (c) RWR query time on each output; with the uncompressed input graph
//! as the query-time reference. Expected shape (paper): PeGaSus/SSumM
//! among the fastest summarizers; queries on k-GraSS/S2L/SAAGs outputs
//! much slower because their summaries are dense.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig8_speed
//! ```

use pgs_baselines::{kgrass_summarize, s2l_summarize, saags_summarize};
use pgs_baselines::{KGrassConfig, S2lConfig, SaagsConfig};
use pgs_bench::{baseline_feasible, dataset, sample_queries, timed};
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_core::{ssumm_summarize, SsummConfig, Summary};
use pgs_queries::{hops_exact, hops_summary, rwr_exact, rwr_summary};

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if names.is_empty() {
        vec!["LA", "CA", "DB", "A6", "SK"]
    } else {
        names.iter().map(|s| s.as_str()).collect()
    };

    for name in names {
        let d = dataset(name);
        let g = &d.graph;
        let budget = 0.5 * g.size_bits();
        let k = g.num_nodes() / 2;
        let queries = sample_queries(g, 5, 13);
        println!(
            "\n=== Fig. 8: {} ({} nodes, {} edges, ratio 0.5) ===",
            d.name,
            g.num_nodes(),
            g.num_edges()
        );
        println!(
            "{:<14} {:>12} {:>10} {:>12} {:>12}",
            "method", "build (ms)", "|P|", "BFS (ms)", "RWR (ms)"
        );

        // Reference: uncompressed queries on the input graph.
        let (_, bfs_ref) = timed(|| {
            for &q in &queries {
                std::hint::black_box(hops_exact(g, q));
            }
        });
        let (_, rwr_ref) = timed(|| {
            for &q in &queries {
                std::hint::black_box(rwr_exact(g, q, 0.05));
            }
        });
        println!(
            "{:<14} {:>12} {:>10} {:>12.1} {:>12.1}",
            "Uncompressed",
            "-",
            g.num_edges(),
            bfs_ref * 1e3 / queries.len() as f64,
            rwr_ref * 1e3 / queries.len() as f64
        );

        let report = |method: &str, s: Summary, build_secs: f64| {
            let (_, bfs) = timed(|| {
                for &q in &queries {
                    std::hint::black_box(hops_summary(&s, q));
                }
            });
            let (_, rwr) = timed(|| {
                for &q in &queries {
                    std::hint::black_box(rwr_summary(&s, q, 0.05));
                }
            });
            println!(
                "{:<14} {:>12.0} {:>10} {:>12.1} {:>12.1}",
                method,
                build_secs * 1e3,
                s.num_superedges(),
                bfs * 1e3 / queries.len() as f64,
                rwr * 1e3 / queries.len() as f64
            );
        };

        let (p, t) = timed(|| {
            summarize(
                g,
                &queries,
                budget,
                &PegasusConfig {
                    num_threads: pgs_bench::num_threads(),
                    ..Default::default()
                },
            )
        });
        report("PeGaSus", p, t);
        let (s, t) = timed(|| {
            ssumm_summarize(
                g,
                budget,
                &SsummConfig {
                    num_threads: pgs_bench::num_threads(),
                    ..Default::default()
                },
            )
        });
        report("SSumM", s, t);
        if baseline_feasible(g) {
            let (x, t) = timed(|| saags_summarize(g, k, &SaagsConfig::default()));
            report("SAAGs", x, t);
            let (x, t) = timed(|| s2l_summarize(g, k, &S2lConfig::default()));
            report("S2L", x, t);
            let (x, t) = timed(|| kgrass_summarize(g, k, &KGrassConfig::default()));
            report("k-GraSS", x, t);
        } else {
            println!(
                "{:<14} o.o.t. (size threshold, as in the paper)",
                "SAAGs/S2L/k-GraSS"
            );
        }
    }
}
