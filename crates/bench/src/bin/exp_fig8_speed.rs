//! Fig. 8 — summarization time and query time per method at
//! compression ratio 0.5.
//!
//! (a) wall time to summarize; (b) BFS (HOP) query time on each output;
//! (c) RWR query time on each output; with the uncompressed input graph
//! as the query-time reference. Expected shape (paper): PeGaSus/SSumM
//! among the fastest summarizers; queries on k-GraSS/S2L/SAAGs outputs
//! much slower because their summaries are dense.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig8_speed
//! ```

use pgs_baselines::{KGrass, S2l, Saags};
use pgs_bench::{baseline_feasible, dataset, sample_queries, timed};
use pgs_core::api::{Budget, Pegasus, Ssumm, SummarizeRequest, Summarizer};
use pgs_core::pegasus::PegasusConfig;
use pgs_core::{SsummConfig, Summary};
use pgs_queries::{hops_exact, hops_summary, rwr_exact, rwr_summary};

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if names.is_empty() {
        vec!["LA", "CA", "DB", "A6", "SK"]
    } else {
        names.iter().map(|s| s.as_str()).collect()
    };

    for name in names {
        let d = dataset(name);
        let g = &d.graph;
        let budget = 0.5 * g.size_bits();
        let k = g.num_nodes() / 2;
        let queries = sample_queries(g, 5, 13);
        println!(
            "\n=== Fig. 8: {} ({} nodes, {} edges, ratio 0.5) ===",
            d.name,
            g.num_nodes(),
            g.num_edges()
        );
        println!(
            "{:<14} {:>12} {:>10} {:>12} {:>12}",
            "method", "build (ms)", "|P|", "BFS (ms)", "RWR (ms)"
        );

        // Reference: uncompressed queries on the input graph.
        let (_, bfs_ref) = timed(|| {
            for &q in &queries {
                std::hint::black_box(hops_exact(g, q));
            }
        });
        let (_, rwr_ref) = timed(|| {
            for &q in &queries {
                std::hint::black_box(rwr_exact(g, q, 0.05));
            }
        });
        println!(
            "{:<14} {:>12} {:>10} {:>12.1} {:>12.1}",
            "Uncompressed",
            "-",
            g.num_edges(),
            bfs_ref * 1e3 / queries.len() as f64,
            rwr_ref * 1e3 / queries.len() as f64
        );

        let report = |method: &str, s: Summary, build_secs: f64| {
            let (_, bfs) = timed(|| {
                for &q in &queries {
                    std::hint::black_box(hops_summary(&s, q));
                }
            });
            let (_, rwr) = timed(|| {
                for &q in &queries {
                    std::hint::black_box(rwr_summary(&s, q, 0.05));
                }
            });
            println!(
                "{:<14} {:>12.0} {:>10} {:>12.1} {:>12.1}",
                method,
                build_secs * 1e3,
                s.num_superedges(),
                bfs * 1e3 / queries.len() as f64,
                rwr * 1e3 / queries.len() as f64
            );
        };

        // Every contender runs through the same request path: one
        // budget-normalizing `SummarizeRequest` per family, dispatched
        // over `dyn Summarizer`.
        let bits_req = SummarizeRequest::new(Budget::Bits(budget)).targets(&queries);
        let uniform_bits_req = SummarizeRequest::new(Budget::Bits(budget));
        let count_req = SummarizeRequest::new(Budget::Supernodes(k));
        let run = |alg: &dyn Summarizer, req: &SummarizeRequest| {
            timed(|| alg.run(g, req).expect("valid request").summary)
        };

        let (p, t) = run(
            &Pegasus(PegasusConfig {
                num_threads: pgs_bench::num_threads(),
                ..Default::default()
            }),
            &bits_req,
        );
        report("PeGaSus", p, t);
        let (s, t) = run(
            &Ssumm(SsummConfig {
                num_threads: pgs_bench::num_threads(),
                ..Default::default()
            }),
            &uniform_bits_req,
        );
        report("SSumM", s, t);
        if baseline_feasible(g) {
            let baselines: [(&str, &dyn Summarizer); 3] = [
                ("SAAGs", &Saags::default()),
                ("S2L", &S2l::default()),
                ("k-GraSS", &KGrass::default()),
            ];
            for (label, alg) in baselines {
                let (x, t) = run(alg, &count_req);
                report(label, x, t);
            }
        } else {
            println!(
                "{:<14} o.o.t. (size threshold, as in the paper)",
                "SAAGs/S2L/k-GraSS"
            );
        }
    }
}
