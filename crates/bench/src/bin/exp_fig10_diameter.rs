//! Fig. 10 — the best-performing α vs the effective diameter.
//!
//! Watts–Strogatz graphs with 1,000 nodes / 10,000 edges and rewiring
//! probability p ∈ {0, 1e-4, 1e-3, 1e-2, 1e-1} span effective diameters
//! from ≈ 45 down to ≈ 4 (paper: 44.95 → 3.71). Target/query nodes are
//! 100 BFS-adjacent nodes from a random start (the paper's localized
//! sets). For each graph, sweep α and report the α with the best SMAPE
//! and the best Spearman per query type at compression ratio 0.3.
//!
//! Expected shape (paper): the best α *decreases* as the effective
//! diameter *increases*.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig10_diameter
//! ```

use pgs_bench::{GroundTruth, QueryType};
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_graph::gen::watts_strogatz;
use pgs_graph::sample::bfs_local_nodes;
use pgs_graph::traverse::effective_diameter;

fn main() {
    let rewiring = [0.0, 1e-4, 1e-3, 1e-2, 1e-1];
    let alphas = [1.05, 1.25, 1.5, 1.75, 2.0];

    println!("Watts-Strogatz n=1000, k=20 (10,000 edges), ratio 0.3, |T|=100 BFS-local");
    println!(
        "{:>8} {:>9} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
        "rewire",
        "eff.diam",
        "RWR best-sm",
        "RWR best-sc",
        "HOP best-sm",
        "HOP best-sc",
        "PHP best-sm",
        "PHP best-sc"
    );

    for &p in &rewiring {
        let g = watts_strogatz(1_000, 20, p, 33);
        let diam = effective_diameter(&g, 100, 5);
        let targets = bfs_local_nodes(&g, 100, 9);
        let truths: Vec<GroundTruth> = QueryType::ALL
            .iter()
            .map(|&qt| GroundTruth::compute(&g, &targets, qt))
            .collect();
        let budget = 0.3 * g.size_bits();

        // scores[qi] = (best alpha by SMAPE, best alpha by Spearman)
        let mut best_sm = [(f64::INFINITY, 0.0f64); 3];
        let mut best_sc = [(f64::NEG_INFINITY, 0.0f64); 3];
        for &alpha in &alphas {
            let cfg = PegasusConfig {
                num_threads: pgs_bench::num_threads(),
                alpha,
                ..Default::default()
            };
            let s = summarize(&g, &targets, budget, &cfg);
            for (qi, gt) in truths.iter().enumerate() {
                let (sm, sc) = gt.score_summary(&s);
                if sm < best_sm[qi].0 {
                    best_sm[qi] = (sm, alpha);
                }
                if sc > best_sc[qi].0 {
                    best_sc[qi] = (sc, alpha);
                }
            }
        }
        println!(
            "{:>8} {:>9.2} | {:>11.2} {:>11.2} | {:>11.2} {:>11.2} | {:>11.2} {:>11.2}",
            p,
            diam,
            best_sm[0].1,
            best_sc[0].1,
            best_sm[1].1,
            best_sc[1].1,
            best_sm[2].1,
            best_sc[2].1
        );
    }
    println!("\n(the paper's Fig. 10: best alpha falls from ~1.8 to ~1.2 as the");
    println!(" effective diameter rises from ~4 to ~45)");
}
