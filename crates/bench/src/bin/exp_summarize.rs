//! Merge-evaluation throughput experiment: summarizes a generated
//! Barabási–Albert graph with all three evaluators — `cached` (the
//! group-local superedge-weight cache of DESIGN.md §7, the default),
//! `scan` (canonical-order member-edge rescans), and `legacy_hash` (the
//! pre-cache hashmap evaluator) — and writes a machine-readable
//! `BENCH_summarize.json` with merge-evals/sec and end-to-end wall time
//! for each, plus the cached-vs-legacy speedup, so future PRs can track
//! the perf trajectory. Output identity across evaluators is measured
//! and *reported* (`scan_output_identical_to_cached`,
//! `legacy_hash_output_identical_to_cached`), not asserted — the
//! fixed-seed suite in `crates/core/tests/eval_equivalence.rs` is the
//! equivalence regression gate. The only hard assertion here is
//! cross-repetition determinism per evaluator.
//!
//! ```text
//! cargo run --release --bin exp_summarize [-- <out.json>]
//! PGS_SUM_NODES=50000 PGS_SUM_DEG=10 cargo run --release --bin exp_summarize
//! ```
//!
//! Knobs: `PGS_SUM_NODES` (default 20_000), `PGS_SUM_DEG` (default 10 —
//! about `nodes × deg` edges), `PGS_SUM_RATIO` (default 0.25, the
//! paper's compression-heavy regime), `PGS_SUM_REPS` (default 3 — reps
//! interleave across the evaluators and each reports its fastest run,
//! the standard defense against scheduler noise), `PGS_THREADS`
//! (default 0 = all hardware threads).

use std::fmt::Write as _;

use pgs_bench::{env_or, num_threads, timed};
use pgs_core::api::{Budget, Pegasus, StopReason, SummarizeRequest, Summarizer};
use pgs_core::pegasus::{PegasusConfig, RunStats};
use pgs_core::working::MergeEvaluator;
use pgs_core::Summary;
use pgs_graph::gen::barabasi_albert;

struct Run {
    label: &'static str,
    wall_secs: f64,
    stats: RunStats,
    stop: StopReason,
}

impl Run {
    fn evals_per_sec(&self) -> f64 {
        self.stats.evals as f64 / self.stats.phases.evaluate.max(1e-12)
    }
}

fn fingerprint(s: &Summary) -> Vec<u32> {
    (0..s.num_nodes() as u32)
        .map(|u| s.supernode_of(u))
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_summarize.json".to_string());
    let nodes: usize = env_or("PGS_SUM_NODES", 20_000);
    let deg: usize = env_or("PGS_SUM_DEG", 10);
    let ratio: f64 = env_or("PGS_SUM_RATIO", 0.25);
    let reps: usize = env_or("PGS_SUM_REPS", 3).max(1);
    let threads = num_threads();

    let (g, gen_secs) = timed(|| barabasi_albert(nodes, deg, 42));
    let budget = ratio * g.size_bits();
    eprintln!(
        "# graph: |V| = {}, |E| = {}, budget ratio {ratio}; threads {threads} \
         (hardware {}); generated in {gen_secs:.2}s",
        g.num_nodes(),
        g.num_edges(),
        rayon::current_num_threads()
    );

    // Three evaluators: `cached` (the default), `scan` (dense scratch,
    // canonical order — byte-identical to cached in every regime
    // measured; pinned on fixed seeds by eval_equivalence.rs), and
    // `legacy_hash` (the pre-cache hashmap evaluator — the speedup
    // baseline; decision-equivalent per evaluation but summed in hash
    // order, so its end-to-end output diverges by design).
    //
    // Repetitions are *interleaved* (cached, scan, legacy, cached, …)
    // and each evaluator reports its fastest rep: on a shared box where
    // load drifts over minutes, interleaving exposes every evaluator to
    // the same conditions, and best-of-N discards the stolen-CPU
    // samples. Summaries must not vary across reps — the engine is
    // deterministic, so any variation is a bug.
    const EVALUATORS: [(&str, MergeEvaluator); 3] = [
        ("cached", MergeEvaluator::Cached),
        ("scan", MergeEvaluator::Scan),
        ("legacy_hash", MergeEvaluator::LegacyHash),
    ];
    let mut best: [Option<(Summary, RunStats, StopReason)>; 3] = [None, None, None];
    let mut walls = [f64::INFINITY; 3];
    for _ in 0..reps {
        for (slot, &(label, evaluator)) in EVALUATORS.iter().enumerate() {
            let alg = Pegasus(PegasusConfig {
                num_threads: threads,
                evaluator,
                ..Default::default()
            });
            let req = SummarizeRequest::new(Budget::Bits(budget)).targets(&[0, 1, 2]);
            let (out, wall) = timed(|| alg.run(&g, &req).expect("valid request"));
            let (summary, stats, stop) = (out.summary, out.stats, out.stop);
            walls[slot] = walls[slot].min(wall);
            best[slot] = match best[slot].take() {
                None => Some((summary, stats, stop)),
                Some((prev, prev_stats, prev_stop)) => {
                    assert_eq!(
                        fingerprint(&prev),
                        fingerprint(&summary),
                        "{label}: summaries varied across repetitions — determinism bug"
                    );
                    if stats.phases.evaluate < prev_stats.phases.evaluate {
                        Some((summary, stats, stop))
                    } else {
                        Some((prev, prev_stats, prev_stop))
                    }
                }
            };
        }
    }

    let mut runs = Vec::new();
    let mut reference: Option<Vec<u32>> = None;
    // Scan-vs-cached identity holds on every graph we've measured, but
    // DESIGN.md §7 documents a legitimate ulp-level escape hatch after
    // intra-group merges — so both identity flags are *reported*, not
    // asserted (the fixed-seed tests in eval_equivalence.rs are the
    // regression gate). Legacy diverges by design (hash-order sums).
    let mut scan_identical = true;
    let mut legacy_identical = true;
    for (slot, &(label, evaluator)) in EVALUATORS.iter().enumerate() {
        let (summary, stats, stop) = best[slot].take().expect("reps >= 1");
        let wall_secs = walls[slot];
        let fp = fingerprint(&summary);
        match &reference {
            None => reference = Some(fp),
            Some(r) if evaluator == MergeEvaluator::Scan => {
                scan_identical = *r == fp;
                if !scan_identical {
                    eprintln!(
                        "# WARNING: scan summary differs from cached on this graph — \
                         a documented ulp-tie effect, or a regression; check \
                         eval_equivalence tests"
                    );
                }
            }
            Some(r) => legacy_identical = *r == fp,
        }
        let run = Run {
            label,
            wall_secs,
            stats,
            stop,
        };
        eprintln!(
            "# {label:>12}: {wall_secs:>7.2}s end-to-end, {:.2}s in evaluate, \
             {} merge-evals ({:.0}/s), {} merges, |S| {}, stop {}",
            stats.phases.evaluate,
            stats.evals,
            run.evals_per_sec(),
            stats.merges,
            summary.num_supernodes(),
            stop
        );
        runs.push(run);
    }

    let cached = &runs[0];
    let legacy = &runs[2];
    let speedup_evals = cached.evals_per_sec() / legacy.evals_per_sec();
    let speedup_wall = legacy.wall_secs / cached.wall_secs;
    eprintln!(
        "# speedup vs legacy_hash: {speedup_evals:.2}x merge-evals/sec, \
         {speedup_wall:.2}x end-to-end wall time \
         (legacy output identical: {legacy_identical})"
    );

    // Hand-rolled JSON (the workspace is offline — no serde).
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"summarize_merge_eval\",").unwrap();
    writeln!(json, "  \"graph\": {{").unwrap();
    writeln!(json, "    \"generator\": \"barabasi_albert\",").unwrap();
    writeln!(json, "    \"nodes\": {},", g.num_nodes()).unwrap();
    writeln!(json, "    \"edges\": {},", g.num_edges()).unwrap();
    writeln!(json, "    \"seed\": 42,").unwrap();
    writeln!(json, "    \"budget_ratio\": {ratio}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();
    writeln!(json, "  \"reps_best_of\": {reps},").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        rayon::current_num_threads()
    )
    .unwrap();
    writeln!(
        json,
        "  \"scan_output_identical_to_cached\": {scan_identical},"
    )
    .unwrap();
    writeln!(
        json,
        "  \"legacy_hash_output_identical_to_cached\": {legacy_identical},"
    )
    .unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"evaluator\": \"{}\", \"wall_secs\": {:.4}, \
             \"eval_secs\": {:.4}, \"merge_evals\": {}, \
             \"merge_evals_per_sec\": {:.1}, \"merges\": {}, \
             \"iterations\": {}, \"stop_reason\": \"{}\"}}{comma}",
            run.label,
            run.wall_secs,
            run.stats.phases.evaluate,
            run.stats.evals,
            run.evals_per_sec(),
            run.stats.merges,
            run.stats.iterations,
            run.stop
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(
        json,
        "  \"speedup_merge_evals_per_sec\": {speedup_evals:.4},"
    )
    .unwrap();
    writeln!(json, "  \"speedup_wall\": {speedup_wall:.4}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("writing BENCH_summarize.json");
    eprintln!("# wrote {out_path}");
    println!("{json}");
}
