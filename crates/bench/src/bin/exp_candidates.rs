//! Candidate-generation throughput experiment (DESIGN.md §11):
//! summarizes a generated Barabási–Albert graph with both candidate
//! generators — `incremental` (persistent min-hash lanes repaired at
//! commit, gain-ordered scheduling; the default) and `recompute`
//! (per-iteration full min-hash passes; the oracle baseline) — and
//! writes a machine-readable `BENCH_candidates.json` with grouped
//! supernodes/sec of candidate generation and end-to-end wall time for
//! each, plus the incremental-vs-recompute speedup. The two paths group
//! differently by design, so output identity across paths is *not*
//! expected; the hard assertion here is cross-repetition determinism
//! per path (plus each path meeting the budget).
//!
//! ```text
//! cargo run --release --bin exp_candidates [-- <out.json>] [--smoke]
//! PGS_CAND_NODES=50000 PGS_CAND_DEG=10 cargo run --release --bin exp_candidates
//! ```
//!
//! Knobs: `PGS_CAND_NODES` (default 20_000), `PGS_CAND_DEG` (default
//! 10), `PGS_CAND_RATIO` (default 0.25, the compression-heavy regime),
//! `PGS_CAND_REPS` (default 3, interleaved best-of-N), `PGS_THREADS`
//! (default 0 = all hardware threads). `--smoke` shrinks everything for
//! CI wiring checks (2k nodes, 2 reps).

use std::fmt::Write as _;

use pgs_bench::{env_or, num_threads, timed};
use pgs_core::api::{Budget, Pegasus, StopReason, SummarizeRequest, Summarizer};
use pgs_core::pegasus::{PegasusConfig, RunStats};
use pgs_core::{CandidateGen, Summary};
use pgs_graph::gen::barabasi_albert;

struct Run {
    label: &'static str,
    wall_secs: f64,
    stats: RunStats,
    stop: StopReason,
    supernodes: usize,
    size_bits: f64,
}

impl Run {
    fn grouped_per_sec(&self) -> f64 {
        self.stats.grouped_supernodes as f64 / self.stats.phases.candidates.max(1e-12)
    }

    /// Wall normalized by committed merges: the two paths group
    /// differently and so commit different merge counts before the
    /// budget is met; per-merge wall is the like-for-like comparison
    /// when eval dominates.
    fn wall_per_merge(&self) -> f64 {
        self.wall_secs / (self.stats.merges as f64).max(1.0)
    }
}

fn fingerprint(s: &Summary) -> Vec<u32> {
    (0..s.num_nodes() as u32)
        .map(|u| s.supernode_of(u))
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = std::env::args()
        .skip(1)
        .find(|a| a != "--smoke")
        .unwrap_or_else(|| "BENCH_candidates.json".to_string());
    let nodes: usize = env_or("PGS_CAND_NODES", if smoke { 2_000 } else { 20_000 });
    let deg: usize = env_or("PGS_CAND_DEG", if smoke { 4 } else { 10 });
    let ratio: f64 = env_or("PGS_CAND_RATIO", 0.25);
    let reps: usize = env_or("PGS_CAND_REPS", if smoke { 2 } else { 3 }).max(1);
    let threads = num_threads();

    let (g, gen_secs) = timed(|| barabasi_albert(nodes, deg, 42));
    let budget = ratio * g.size_bits();
    eprintln!(
        "# graph: |V| = {}, |E| = {}, budget ratio {ratio}; threads {threads} \
         (hardware {}); generated in {gen_secs:.2}s{}",
        g.num_nodes(),
        g.num_edges(),
        rayon::current_num_threads(),
        if smoke { "; SMOKE mode" } else { "" }
    );

    // Interleaved best-of-N, as in exp_summarize: both paths see the
    // same load drift, and the fastest rep discards stolen-CPU samples.
    // Candidate time (`stats.phases.candidates`) is the metric under test;
    // best reps are selected by it.
    const GENERATORS: [(&str, CandidateGen); 2] = [
        ("incremental", CandidateGen::Incremental),
        ("recompute", CandidateGen::Recompute),
    ];
    let mut best: [Option<(Summary, RunStats, StopReason)>; 2] = [None, None];
    let mut walls = [f64::INFINITY; 2];
    for _ in 0..reps {
        for (slot, &(label, candidate_gen)) in GENERATORS.iter().enumerate() {
            let alg = Pegasus(PegasusConfig {
                num_threads: threads,
                candidate_gen,
                ..Default::default()
            });
            let req = SummarizeRequest::new(Budget::Bits(budget)).targets(&[0, 1, 2]);
            let (out, wall) = timed(|| alg.run(&g, &req).expect("valid request"));
            let (summary, stats, stop) = (out.summary, out.stats, out.stop);
            walls[slot] = walls[slot].min(wall);
            best[slot] = match best[slot].take() {
                None => Some((summary, stats, stop)),
                Some((prev, prev_stats, prev_stop)) => {
                    assert_eq!(
                        fingerprint(&prev),
                        fingerprint(&summary),
                        "{label}: summaries varied across repetitions — determinism bug"
                    );
                    if stats.phases.candidates < prev_stats.phases.candidates {
                        Some((summary, stats, stop))
                    } else {
                        Some((prev, prev_stats, prev_stop))
                    }
                }
            };
        }
    }

    let mut runs = Vec::new();
    for (slot, &(label, _)) in GENERATORS.iter().enumerate() {
        let (summary, stats, stop) = best[slot].take().expect("reps >= 1");
        assert!(
            summary.size_bits() <= budget + 1e-9,
            "{label}: budget missed"
        );
        let run = Run {
            label,
            wall_secs: walls[slot],
            stats,
            stop,
            supernodes: summary.num_supernodes(),
            size_bits: summary.size_bits(),
        };
        eprintln!(
            "# {label:>12}: {:>7.2}s end-to-end, {:.3}s in candidate gen, \
             {} grouped supernodes ({:.0}/s), {} groups, {} merges, |S| {}, stop {}",
            run.wall_secs,
            stats.phases.candidates,
            stats.grouped_supernodes,
            run.grouped_per_sec(),
            stats.groups,
            stats.merges,
            run.supernodes,
            stop
        );
        runs.push(run);
    }

    let inc = &runs[0];
    let rec = &runs[1];
    let speedup_candidates = inc.grouped_per_sec() / rec.grouped_per_sec();
    let speedup_wall = rec.wall_secs / inc.wall_secs;
    let speedup_wall_per_merge = rec.wall_per_merge() / inc.wall_per_merge();
    eprintln!(
        "# incremental vs recompute: {speedup_candidates:.2}x candidate throughput, \
         {speedup_wall:.2}x end-to-end wall time ({speedup_wall_per_merge:.2}x per merge)"
    );

    // Hand-rolled JSON (the workspace is offline — no serde).
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"candidate_generation\",").unwrap();
    writeln!(json, "  \"graph\": {{").unwrap();
    writeln!(json, "    \"generator\": \"barabasi_albert\",").unwrap();
    writeln!(json, "    \"nodes\": {},", g.num_nodes()).unwrap();
    writeln!(json, "    \"edges\": {},", g.num_edges()).unwrap();
    writeln!(json, "    \"seed\": 42,").unwrap();
    writeln!(json, "    \"budget_ratio\": {ratio}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"threads\": {threads},").unwrap();
    writeln!(json, "  \"reps_best_of\": {reps},").unwrap();
    writeln!(json, "  \"smoke\": {smoke},").unwrap();
    writeln!(
        json,
        "  \"hardware_threads\": {},",
        rayon::current_num_threads()
    )
    .unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"candidate_gen\": \"{}\", \"wall_secs\": {:.4}, \
             \"candidate_secs\": {:.4}, \"grouped_supernodes\": {}, \
             \"grouped_supernodes_per_sec\": {:.1}, \"groups\": {}, \
             \"eval_secs\": {:.4}, \"merges\": {}, \"iterations\": {}, \
             \"wall_secs_per_merge\": {:.7}, \"supernodes\": {}, \
             \"size_bits\": {:.1}, \"stop_reason\": \"{}\"}}{comma}",
            run.label,
            run.wall_secs,
            run.stats.phases.candidates,
            run.stats.grouped_supernodes,
            run.grouped_per_sec(),
            run.stats.groups,
            run.stats.phases.evaluate,
            run.stats.merges,
            run.stats.iterations,
            run.wall_per_merge(),
            run.supernodes,
            run.size_bits,
            run.stop
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(
        json,
        "  \"speedup_candidate_throughput\": {speedup_candidates:.4},"
    )
    .unwrap();
    writeln!(json, "  \"speedup_wall\": {speedup_wall:.4},").unwrap();
    writeln!(
        json,
        "  \"speedup_wall_per_merge\": {speedup_wall_per_merge:.4}"
    )
    .unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("writing BENCH_candidates.json");
    eprintln!("# wrote {out_path}");
    println!("{json}");
}
