//! Parallel-engine scaling experiment: summarizes a generated
//! Barabási–Albert graph (≥ 100k edges by default) at 1/2/4/8 worker
//! threads, verifies every run lands on the byte-identical summary, and
//! writes a machine-readable `BENCH_parallel.json` so future PRs can
//! track the perf trajectory.
//!
//! ```text
//! cargo run --release --bin exp_parallel [-- <out.json>]
//! PGS_PAR_NODES=50000 PGS_PAR_DEG=5 cargo run --release --bin exp_parallel
//! ```
//!
//! Knobs: `PGS_PAR_NODES` (default 25_000), `PGS_PAR_DEG` (default 5 —
//! about `nodes × deg` edges), `PGS_PAR_RATIO` (default 0.4),
//! `PGS_PAR_THREADS` (comma list, default `1,2,4,8`).

use std::fmt::Write as _;

use pgs_bench::{env_or, timed};
use pgs_core::pegasus::{summarize_with_stats, PegasusConfig};
use pgs_graph::gen::barabasi_albert;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let nodes: usize = env_or("PGS_PAR_NODES", 25_000);
    let deg: usize = env_or("PGS_PAR_DEG", 5);
    let ratio: f64 = env_or("PGS_PAR_RATIO", 0.4);
    let threads_list: Vec<usize> = std::env::var("PGS_PAR_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();

    let hardware = rayon::current_num_threads();
    let (g, gen_secs) = timed(|| barabasi_albert(nodes, deg, 42));
    let budget = ratio * g.size_bits();
    eprintln!(
        "# graph: |V| = {}, |E| = {}, budget ratio {ratio} ({:.0} bits); \
         hardware threads: {hardware}; generated in {gen_secs:.2}s",
        g.num_nodes(),
        g.num_edges(),
        budget
    );

    let mut runs = Vec::new();
    let mut reference: Option<Vec<u32>> = None;
    for &threads in &threads_list {
        let cfg = PegasusConfig {
            num_threads: threads,
            ..Default::default()
        };
        let ((summary, stats), secs) = timed(|| summarize_with_stats(&g, &[0, 1, 2], budget, &cfg));
        let assignment: Vec<u32> = (0..g.num_nodes() as u32)
            .map(|u| summary.supernode_of(u))
            .collect();
        match &reference {
            None => reference = Some(assignment),
            Some(r) => assert_eq!(
                *r, assignment,
                "{threads}-thread summary diverged — determinism bug"
            ),
        }
        let merges_per_sec = stats.merges as f64 / secs;
        eprintln!(
            "# threads {threads:>2}: {secs:>7.2}s  {} merges ({merges_per_sec:.0}/s)  \
             |S| {}  |P| {}",
            stats.merges,
            summary.num_supernodes(),
            summary.num_superedges()
        );
        runs.push((threads, secs, stats.merges, merges_per_sec));
    }
    // Speedup baseline: the 1-thread run wherever it appears in the
    // list; fall back to the first run if the list omits 1.
    let t1_secs = runs
        .iter()
        .find(|r| r.0 == 1)
        .map(|r| r.1)
        .unwrap_or(runs.first().expect("at least one thread count").1);
    for &(threads, secs, ..) in &runs {
        eprintln!(
            "# speedup threads {threads:>2}: {:.2}x vs 1 thread",
            t1_secs / secs
        );
    }

    // Hand-rolled JSON (the workspace is offline — no serde).
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"parallel_pegasus\",").unwrap();
    writeln!(json, "  \"graph\": {{").unwrap();
    writeln!(json, "    \"generator\": \"barabasi_albert\",").unwrap();
    writeln!(json, "    \"nodes\": {},", g.num_nodes()).unwrap();
    writeln!(json, "    \"edges\": {},", g.num_edges()).unwrap();
    writeln!(json, "    \"seed\": 42,").unwrap();
    writeln!(json, "    \"budget_ratio\": {ratio}").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"hardware_threads\": {hardware},").unwrap();
    writeln!(json, "  \"identical_output_across_threads\": true,").unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, (threads, secs, merges, mps)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"threads\": {threads}, \"wall_secs\": {secs:.4}, \
             \"speedup_vs_1\": {:.4}, \"merges\": {merges}, \
             \"merges_per_sec\": {mps:.1}}}{comma}",
            t1_secs / secs
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, &json).expect("writing BENCH_parallel.json");
    eprintln!("# wrote {out_path}");
    println!("{json}");
}
