//! Fig. 2(a) + Fig. 5 — effectiveness of personalization.
//!
//! For each dataset, target-set size |T| ∈ {1, 0.01|V|, 0.1|V|, 0.3|V|,
//! 0.5|V|, |V|} and α ∈ {1.25, 1.5, 1.75}, summarize at compression
//! ratio 0.5 and measure the personalized error at a test node `u`
//! (Eq. 1 with T = {u}, u ∈ T) **relative to the non-personalized case**
//! (T = V). Averaged over 3 test nodes, as in the paper. SSumM is the
//! non-personalized external reference.
//!
//! Expected shape (paper): relative error < 1 everywhere, decreasing as
//! |T| shrinks and as α grows; SSumM sits above PeGaSus(T=V).
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig5_effectiveness
//! ```

use pgs_bench::{dataset, sample_queries};
use pgs_core::error::personalized_error;
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_core::weights::NodeWeights;
use pgs_core::{ssumm_summarize, SsummConfig};

fn main() {
    // The smaller datasets keep the sweep quick; the remaining stand-ins
    // behave the same way (run with all names to verify).
    let names = ["LA", "CA", "DB"];
    let alphas = [1.25, 1.5, 1.75];
    let fractions: [(&str, f64); 6] = [
        ("|T|=1", 0.0),
        ("0.01|V|", 0.01),
        ("0.1|V|", 0.1),
        ("0.3|V|", 0.3),
        ("0.5|V|", 0.5),
        ("|V|", 1.0),
    ];

    for alpha in alphas {
        println!("\n=== Fig. 5, alpha = {alpha} (compression ratio 0.5) ===");
        println!(
            "{:<8} {}",
            "dataset",
            fractions
                .iter()
                .map(|(l, _)| format!("{l:>10}"))
                .collect::<String>()
                + &format!("{:>10}", "SSumM")
        );
        for name in names {
            let d = dataset(name);
            let g = &d.graph;
            let n = g.num_nodes();
            let budget = 0.5 * g.size_bits();

            // Three test nodes; for each |T|, T contains the test node
            // plus uniform samples (the paper samples T uniformly and
            // tests at members of T).
            let test_nodes = sample_queries(g, 3, 500);

            // Reference: non-personalized summary (T = V), measured with
            // each test node's single-target weights.
            let uniform = summarize(
                g,
                &[],
                budget,
                &PegasusConfig {
                    num_threads: pgs_bench::num_threads(),
                    ..Default::default()
                },
            );
            let ssumm = ssumm_summarize(
                g,
                budget,
                &SsummConfig {
                    num_threads: pgs_bench::num_threads(),
                    ..Default::default()
                },
            );

            let mut row = format!("{:<8}", d.name);
            for &(_, frac) in &fractions {
                let mut rel_sum = 0.0;
                for (i, &u) in test_nodes.iter().enumerate() {
                    let mut targets = vec![u];
                    if frac > 0.0 {
                        let extra = ((n as f64 * frac) as usize).saturating_sub(1);
                        targets.extend(sample_queries(g, extra, 600 + i as u64));
                        targets.dedup();
                    }
                    let cfg = PegasusConfig {
                        num_threads: pgs_bench::num_threads(),
                        alpha,
                        ..Default::default()
                    };
                    let s = summarize(g, &targets, budget, &cfg);
                    let w_u = NodeWeights::personalized(g, &[u], alpha);
                    let err = personalized_error(g, &s, &w_u).expect("matching node counts");
                    let base = personalized_error(g, &uniform, &w_u)
                        .expect("matching node counts")
                        .max(1e-12);
                    rel_sum += err / base;
                }
                row += &format!("{:>10.3}", rel_sum / test_nodes.len() as f64);
            }
            // SSumM reference (relative to PeGaSus T=V), averaged the
            // same way.
            let mut ssumm_rel = 0.0;
            for &u in &test_nodes {
                let w_u = NodeWeights::personalized(g, &[u], alpha);
                let err = personalized_error(g, &ssumm, &w_u).expect("matching node counts");
                let base = personalized_error(g, &uniform, &w_u)
                    .expect("matching node counts")
                    .max(1e-12);
                ssumm_rel += err / base;
            }
            row += &format!("{:>10.3}", ssumm_rel / test_nodes.len() as f64);
            println!("{row}");
        }
    }
    println!("\n(values are personalized error at a test node relative to the");
    println!(" non-personalized PeGaSus summary; < 1 means personalization helps,");
    println!(" and the paper's Fig. 5 shows the same left-to-right increase)");
}
