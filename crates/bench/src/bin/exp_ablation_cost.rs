//! Ablation (online-appendix experiment referenced in Sect. III-B):
//! relative cost reduction (Eq. 11) vs absolute cost reduction (Eq. 10)
//! as the merge-selection criterion.
//!
//! Expected shape (paper): the relative criterion yields summaries from
//! which queries are answered more accurately — the absolute criterion
//! "myopically" merges far-from-target pairs with dissimilar
//! connectivity.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_ablation_cost
//! ```

use pgs_bench::{dataset, num_queries, sample_queries, GroundTruth, QueryType};
use pgs_core::error::personalized_error;
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_core::weights::NodeWeights;

fn main() {
    let names = ["LA", "CA", "DB"];
    let ratio = 0.5;

    println!("=== Eq. (11) relative vs Eq. (10) absolute cost reduction (ratio {ratio}) ===");
    println!(
        "{:<8} {:<10} {:>12} | {:>8} {:>8} | {:>8} {:>8}",
        "dataset", "criterion", "pers. error", "RWR sm", "RWR sc", "HOP sm", "HOP sc"
    );
    for name in names {
        let d = dataset(name);
        let g = &d.graph;
        let queries = sample_queries(g, num_queries(), 41);
        let truths: Vec<GroundTruth> = [QueryType::Rwr, QueryType::Hop]
            .iter()
            .map(|&qt| GroundTruth::compute(g, &queries, qt))
            .collect();
        let w_eval = NodeWeights::personalized(g, &queries, 1.25);
        let budget = ratio * g.size_bits();

        for (label, use_absolute) in [("relative", false), ("absolute", true)] {
            let cfg = PegasusConfig {
                num_threads: pgs_bench::num_threads(),
                use_absolute_cost: use_absolute,
                ..Default::default()
            };
            let s = summarize(g, &queries, budget, &cfg);
            let err = personalized_error(g, &s, &w_eval).expect("matching node counts");
            let mut row = format!("{:<8} {:<10} {:>12.1} |", d.name, label, err);
            for gt in &truths {
                let (sm, sc) = gt.score_summary(&s);
                row += &format!(" {sm:>8.3} {sc:>8.3} |");
            }
            println!("{}", row.trim_end_matches(" |"));
        }
    }
}
