//! Fig. 9 — effect of the degree of personalization α.
//!
//! α ∈ {1, 1.05, 1.25, 1.5, 1.75, 2} at compression ratios 0.3 and 0.5;
//! SMAPE and Spearman for RWR / HOP / PHP averaged over the datasets,
//! with SSumM as the external reference row. |T| = query set, sampled
//! uniformly.
//!
//! Expected shape (paper): accuracy best at moderate α (1.25–1.5),
//! degrading at α = 2 where "more global information is lost"; every
//! α ≥ 1 row beats SSumM.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig9_alpha
//! ```

use pgs_bench::{dataset, num_queries, sample_queries, GroundTruth, QueryType};
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_core::{ssumm_summarize, SsummConfig};

fn main() {
    let names = ["LA", "CA", "DB"];
    let alphas = [1.0, 1.05, 1.25, 1.5, 1.75, 2.0];

    for ratio in [0.3, 0.5] {
        println!("\n=== Fig. 9: compression ratio {ratio}, averaged over {names:?} ===");
        println!(
            "{:<14} {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
            "config", "RWR sm", "RWR sc", "HOP sm", "HOP sc", "PHP sm", "PHP sc"
        );

        // Accumulate per-alpha scores across datasets.
        let mut acc = vec![[0.0f64; 6]; alphas.len()];
        let mut ssumm_acc = [0.0f64; 6];
        for name in names {
            let d = dataset(name);
            let g = &d.graph;
            let queries = sample_queries(g, num_queries(), 17);
            let truths: Vec<GroundTruth> = QueryType::ALL
                .iter()
                .map(|&qt| GroundTruth::compute(g, &queries, qt))
                .collect();
            let budget = ratio * g.size_bits();

            for (ai, &alpha) in alphas.iter().enumerate() {
                let cfg = PegasusConfig {
                    num_threads: pgs_bench::num_threads(),
                    alpha,
                    ..Default::default()
                };
                let s = summarize(g, &queries, budget, &cfg);
                for (qi, gt) in truths.iter().enumerate() {
                    let (sm, sc) = gt.score_summary(&s);
                    acc[ai][2 * qi] += sm;
                    acc[ai][2 * qi + 1] += sc;
                }
            }
            let s = ssumm_summarize(
                g,
                budget,
                &SsummConfig {
                    num_threads: pgs_bench::num_threads(),
                    ..Default::default()
                },
            );
            for (qi, gt) in truths.iter().enumerate() {
                let (sm, sc) = gt.score_summary(&s);
                ssumm_acc[2 * qi] += sm;
                ssumm_acc[2 * qi + 1] += sc;
            }
        }

        let dn = names.len() as f64;
        for (ai, &alpha) in alphas.iter().enumerate() {
            println!(
                "alpha={:<8} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
                alpha,
                acc[ai][0] / dn,
                acc[ai][1] / dn,
                acc[ai][2] / dn,
                acc[ai][3] / dn,
                acc[ai][4] / dn,
                acc[ai][5] / dn
            );
        }
        println!(
            "{:<14} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} | {:>8.3} {:>8.3}",
            "SSumM",
            ssumm_acc[0] / dn,
            ssumm_acc[1] / dn,
            ssumm_acc[2] / dn,
            ssumm_acc[3] / dn,
            ssumm_acc[4] / dn,
            ssumm_acc[5] / dn
        );
    }
}
