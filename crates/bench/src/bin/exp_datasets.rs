//! Table II — dataset inventory: the paper's six graphs vs our offline
//! stand-ins (largest connected components, like the paper).
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_datasets
//! ```

use pgs_bench::{dataset, dataset_names};
use pgs_graph::traverse::effective_diameter;

fn main() {
    println!("Table II: six real-world graphs and their offline stand-ins");
    println!(
        "{:<4} {:<40} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "Name",
        "Paper dataset (stand-in class)",
        "paper |V|",
        "paper |E|",
        "our |V|",
        "our |E|",
        "eff.diam"
    );
    for name in dataset_names() {
        let d = dataset(name);
        let diam = effective_diameter(&d.graph, 20, 7);
        println!(
            "{:<4} {:<40} {:>12} {:>12} {:>10} {:>10} {:>8.2}",
            d.name,
            d.paper_name,
            d.paper_nodes,
            d.paper_edges,
            d.graph.num_nodes(),
            d.graph.num_edges(),
            diam
        );
    }
    println!();
    println!("The synthetic scalability graph of Table II (BA model, 10M nodes /");
    println!("1B edges in the paper) is generated on demand by exp_fig6_scalability.");
    println!("Real edge lists drop in via pgs_graph::io::read_edge_list.");
}
