//! Fig. 7 (+ the PHP results of the online appendix) — query accuracy
//! vs compression ratio, PeGaSus against the four non-personalized
//! baselines.
//!
//! Per dataset: sample |T| = `PGS_QUERIES` query nodes (paper: 100),
//! personalize PeGaSus to them (α = 1.25), and at each compression
//! ratio measure SMAPE and Spearman of RWR / HOP / PHP answers from each
//! method's summary. Supernode-budgeted baselines (SAAGs, S2L, k-GraSS)
//! sweep |S| instead of bits, as in Sect. V-A, and run only on datasets
//! small enough to finish (the paper's o.o.t./o.o.m. entries).
//!
//! Expected shape (paper): PeGaSus lowest SMAPE / highest Spearman at
//! every ratio; SSumM second; the supernode-budget baselines behind.
//!
//! ```text
//! cargo run --release -p pgs-bench --bin exp_fig7_query_accuracy
//! ```

use pgs_baselines::{kgrass_summarize, s2l_summarize, saags_summarize};
use pgs_baselines::{KGrassConfig, S2lConfig, SaagsConfig};
use pgs_bench::{baseline_feasible, dataset, num_queries, sample_queries, GroundTruth, QueryType};
use pgs_core::pegasus::{summarize, PegasusConfig};
use pgs_core::{ssumm_summarize, SsummConfig, Summary};

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if names.is_empty() {
        vec!["LA", "CA", "DB", "A6"]
    } else {
        names.iter().map(|s| s.as_str()).collect()
    };
    let ratios = [0.1, 0.3, 0.5, 0.7, 0.9];

    for name in names {
        let d = dataset(name);
        let g = &d.graph;
        let queries = sample_queries(g, num_queries(), 11);
        println!(
            "\n=== Fig. 7: {} ({} nodes, {} edges, |T|={}) ===",
            d.name,
            g.num_nodes(),
            g.num_edges(),
            queries.len()
        );
        let truths: Vec<GroundTruth> = QueryType::ALL
            .iter()
            .map(|&qt| GroundTruth::compute(g, &queries, qt))
            .collect();

        println!(
            "{:<8} {:>6} {:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
            "method",
            "ratio",
            "realratio",
            "RWR sm",
            "RWR sc",
            "HOP sm",
            "HOP sc",
            "PHP sm",
            "PHP sc"
        );
        let report = |method: &str, ratio: f64, s: &Summary| {
            let real = s.size_bits() / g.size_bits();
            let mut row = format!("{method:<8} {ratio:>6.1} {real:>8.2} |");
            for gt in &truths {
                let (sm, sc) = gt.score_summary(s);
                row += &format!(" {sm:>8.3} {sc:>8.3} |");
            }
            println!("{}", row.trim_end_matches(" |"));
        };

        for &ratio in &ratios {
            let budget = ratio * g.size_bits();
            let cfg = PegasusConfig {
                num_threads: pgs_bench::num_threads(),
                ..Default::default()
            }; // α = 1.25
            let p = summarize(g, &queries, budget, &cfg);
            report("PeGaSus", ratio, &p);
            let s = ssumm_summarize(
                g,
                budget,
                &SsummConfig {
                    num_threads: pgs_bench::num_threads(),
                    ..Default::default()
                },
            );
            report("SSumM", ratio, &s);

            if baseline_feasible(g) {
                // Supernode budgets 10%..90% of |V| (Sect. V-A); map the
                // bit-ratio onto the supernode-count ratio for alignment.
                let k = ((g.num_nodes() as f64 * ratio) as usize).max(2);
                report(
                    "SAAGs",
                    ratio,
                    &saags_summarize(g, k, &SaagsConfig::default()),
                );
                report("S2L", ratio, &s2l_summarize(g, k, &S2lConfig::default()));
                report(
                    "k-GraSS",
                    ratio,
                    &kgrass_summarize(g, k, &KGrassConfig::default()),
                );
            }
        }
        if !baseline_feasible(g) {
            println!(
                "SAAGs/S2L/k-GraSS: o.o.t. (skipped above the size threshold, as in the paper)"
            );
        }
    }
}
