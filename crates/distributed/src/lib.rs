//! # pgs-distributed — "communication-free" distributed multi-query
//! answering (Sect. IV, Alg. 3; evaluated in Sect. V-F / Fig. 12).
//!
//! A [`Cluster`] simulates `m` machines, each with `k` bits of memory.
//! Preprocessing partitions `V` into `m` subsets `V_1..V_m` (Louvain by
//! default, any [`pgs_partition::Method`] works) and loads each machine
//! with one of:
//!
//! * a **PeGaSus summary personalized to `V_i`** within budget `k`
//!   (Alg. 3 — the paper's proposal),
//! * a shared **non-personalized SSumM summary** of the whole graph
//!   within budget `k` (Fig. 12's SSumM baseline), or
//! * a **subgraph of size `k`** composed of the edges closest to `V_i`
//!   ("Potential Alternatives" of Sect. IV — the graph-partitioning
//!   baselines).
//!
//! A query on node `q` is routed to the machine `i` with `q ∈ V_i` and
//! answered there with zero inter-machine communication.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod subgraph;

pub use cluster::{Backend, BatchQuery, Cluster, MachineStore};
pub use subgraph::local_subgraph;
