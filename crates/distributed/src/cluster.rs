//! The `m`-machine cluster simulator implementing Alg. 3.
//!
//! Machine stores are built in parallel: each machine's summary (or
//! subgraph) depends only on the shared input graph and that machine's
//! node subset, so construction fans out one task per machine through
//! [`pgs_core::exec::Exec`] — the same deterministic fork-join machinery
//! the summarizer's evaluate phase uses — and reassembles by machine
//! index. The built cluster is therefore identical at any parallelism.

use std::sync::Arc;

use pgs_core::api::{Budget, Pegasus, PgsError, Ssumm, SummarizeRequest, Summarizer};
use pgs_core::exec::Exec;
use pgs_core::pegasus::PegasusConfig;
use pgs_core::ssumm::SsummConfig;
use pgs_core::Summary;
use pgs_graph::{Graph, NodeId};
use pgs_partition::Method;
use pgs_queries::{hops_summary, php_summary, rwr_summary, QueryEngine};
use pgs_serve::{ServiceConfig, SubmitRequest, SummaryService};

use crate::subgraph::local_subgraph;

/// Which query a [`Cluster::query_batch`] call answers for every node in
/// the batch.
#[derive(Clone, Copy, Debug)]
pub enum BatchQuery {
    /// RWR with the given restart probability (paper: 0.05).
    Rwr(f64),
    /// BFS hop counts; unreachable targets come back as `f64::INFINITY`.
    Hop,
    /// PHP with the given decay constant (paper: 0.95).
    Php(f64),
}

/// What each machine stores.
pub enum MachineStore {
    /// A summary graph (personalized or not).
    Summary(Summary),
    /// An uncompressed local subgraph over the full node-id space.
    Subgraph(Graph),
}

impl MachineStore {
    /// Bits this machine's store occupies (Eq. 3 / Eq. 4 accounting).
    pub fn size_bits(&self) -> f64 {
        match self {
            MachineStore::Summary(s) => s.size_bits(),
            MachineStore::Subgraph(g) => g.size_bits(),
        }
    }
}

/// How machine stores are built (the Fig. 12 contenders).
#[derive(Clone, Debug)]
pub enum Backend {
    /// Alg. 3: a PeGaSus summary personalized to each machine's subset.
    Pegasus(PegasusConfig),
    /// One non-personalized SSumM summary shared by every machine.
    Ssumm(SsummConfig),
    /// Uncompressed subgraphs from a graph-partitioning method.
    Subgraph(Method),
}

/// An in-process simulation of `m` machines answering queries with zero
/// inter-machine communication (Sect. IV).
///
/// # Example
/// ```
/// use pgs_graph::gen::planted_partition;
/// use pgs_distributed::{Backend, Cluster};
///
/// let g = planted_partition(200, 8, 800, 100, 1);
/// // 4 machines, each with memory for a ratio-0.5 summary (Sect. V-F).
/// let budget = 0.5 * g.size_bits();
/// let cluster = Cluster::build(&g, 4, budget, &Backend::Pegasus(Default::default()), 7);
/// let scores = cluster.rwr(0, 0.05);      // answered by node 0's machine
/// assert_eq!(scores.len(), 200);
/// ```
pub struct Cluster {
    /// Machine of each node (`V_i` membership).
    part: Vec<u32>,
    machines: Vec<MachineStore>,
}

impl Cluster {
    /// Preprocessing of Alg. 3: partition `V` with Louvain (or the
    /// backend's own partitioner), then build one store per machine
    /// within `budget_bits_per_machine`. Thin wrapper over
    /// [`Cluster::try_build`] for callers with pre-validated inputs.
    ///
    /// # Panics
    /// Panics on the [`PgsError`]s [`Cluster::try_build`] reports.
    pub fn build(
        g: &Graph,
        m: usize,
        budget_bits_per_machine: f64,
        backend: &Backend,
        seed: u64,
    ) -> Cluster {
        Self::try_build(g, m, budget_bits_per_machine, backend, seed)
            .unwrap_or_else(|e| panic!("cluster build failed: {e}"))
    }

    /// [`Cluster::build`] through the request API: summary backends run
    /// [`Pegasus`]/[`Ssumm`] via [`Summarizer::run`], so an invalid
    /// per-machine budget (or an empty graph) surfaces as a typed
    /// [`PgsError`] instead of a panic deep inside a worker.
    pub fn try_build(
        g: &Graph,
        m: usize,
        budget_bits_per_machine: f64,
        backend: &Backend,
        seed: u64,
    ) -> Result<Cluster, PgsError> {
        assert!(m >= 1, "need at least one machine");
        let part = match backend {
            // Alg. 3 partitions with Louvain; the subgraph baselines use
            // their own partitioner for both routing and construction.
            Backend::Pegasus(_) | Backend::Ssumm(_) => Method::Louvain.partition(g, m, seed),
            Backend::Subgraph(method) => method.partition(g, m, seed),
        };
        let mut subsets: Vec<Vec<NodeId>> = vec![Vec::new(); m];
        for (u, &p) in part.iter().enumerate() {
            subsets[p as usize].push(u as NodeId);
        }

        // One build task per machine. The total parallelism budget is the
        // backend's own `num_threads` knob (0 = all hardware threads), so
        // a caller limiting CPU gets a correspondingly limited — even
        // fully serial — cluster build.
        let machines: Vec<MachineStore> = match backend {
            Backend::Pegasus(cfg) => {
                // Split the budget between the machine fan-out and each
                // summarizer's own evaluate phases: m machines ×
                // (budget/m) inner workers never oversubscribes. Output
                // is identical at any split (the engine's determinism
                // guarantee), so overriding the inner parallelism is safe.
                let exec = Exec::new(cfg.num_threads);
                let inner = Pegasus(PegasusConfig {
                    num_threads: (exec.threads() / m.max(1)).max(1),
                    ..cfg.clone()
                });
                exec.map_indexed(&subsets, |_, subset| {
                    // An empty subset means that machine personalizes to
                    // nothing in particular: `targets` maps it to the
                    // uniform weights the legacy path used.
                    let req = SummarizeRequest::new(Budget::Bits(budget_bits_per_machine))
                        .targets(subset);
                    inner
                        .run(g, &req)
                        .map(|out| MachineStore::Summary(out.summary))
                })
                .into_iter()
                .collect::<Result<_, _>>()?
            }
            Backend::Ssumm(cfg) => {
                // One non-personalized summary, logically replicated;
                // `cfg.num_threads` already governs its build.
                let req = SummarizeRequest::new(Budget::Bits(budget_bits_per_machine));
                let s = Ssumm(cfg.clone()).run(g, &req)?.summary;
                (0..m).map(|_| MachineStore::Summary(s.clone())).collect()
            }
            Backend::Subgraph(_) => Exec::new(0).map_indexed(&subsets, |_, subset| {
                MachineStore::Subgraph(local_subgraph(g, subset, budget_bits_per_machine))
            }),
        };
        Ok(Cluster { part, machines })
    }

    /// Alg.-3 preprocessing routed through the multi-tenant serving
    /// layer: partitions `V` with Louvain, then submits one
    /// personalized summarization request per machine (tenant
    /// `machine-<i>`) to a [`SummaryService`] over the Pegasus backend
    /// and assembles the stores from the handles. The service's worker
    /// pool replaces [`Cluster::try_build`]'s ad-hoc per-machine
    /// fan-out — same batch, but with the serving layer's queueing,
    /// deadlines, and stats — and the output is byte-identical to
    /// `try_build` with [`Backend::Pegasus`] (the engine is
    /// deterministic at any parallelism; pinned in the tests below).
    ///
    /// Inner summarizer parallelism follows [`Cluster::try_build`]'s
    /// split: `cfg.num_threads` (0 = hardware) divided across the `m`
    /// machine builds, so pool workers × evaluate-phase threads never
    /// oversubscribes. Output is identical at any split.
    pub fn try_build_served(
        g: &Arc<Graph>,
        m: usize,
        budget_bits_per_machine: f64,
        cfg: &PegasusConfig,
        seed: u64,
        svc_cfg: ServiceConfig,
    ) -> Result<Cluster, PgsError> {
        assert!(m >= 1, "need at least one machine");
        let part = Method::Louvain.partition(g, m, seed);
        let mut subsets: Vec<Vec<NodeId>> = vec![Vec::new(); m];
        for (u, &p) in part.iter().enumerate() {
            subsets[p as usize].push(u as NodeId);
        }
        let inner = Pegasus(PegasusConfig {
            num_threads: (Exec::new(cfg.num_threads).threads() / m.max(1)).max(1),
            ..cfg.clone()
        });
        // Every machine personalizes to a distinct subset, so the
        // submit-side weight cache could never hit — disabling it keeps
        // each machine's Eq.-2 BFS inside its (parallel) worker run
        // instead of resolving serially on this thread at submit time.
        let svc_cfg = ServiceConfig {
            cache_capacity: 0,
            ..svc_cfg
        };
        let svc = SummaryService::new(Arc::clone(g), Arc::new(inner), svc_cfg);
        let handles: Vec<_> = subsets
            .iter()
            .enumerate()
            .map(|(i, subset)| {
                let req =
                    SummarizeRequest::new(Budget::Bits(budget_bits_per_machine)).targets(subset);
                svc.submit(SubmitRequest::new(format!("machine-{i}"), req))
            })
            .collect::<Result<_, _>>()?;
        let machines: Vec<MachineStore> = handles
            .iter()
            .map(|h| h.wait().map(|out| MachineStore::Summary(out.summary)))
            .collect::<Result<_, _>>()?;
        Ok(Cluster { part, machines })
    }

    /// Number of machines `m`.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// The machine a query on node `q` routes to (Alg. 3 line 6).
    #[inline]
    pub fn route(&self, q: NodeId) -> usize {
        self.part[q as usize] as usize
    }

    /// Read-only view of a machine's store.
    pub fn machine(&self, i: usize) -> &MachineStore {
        &self.machines[i]
    }

    /// Largest per-machine store, in bits (must respect the budget).
    pub fn max_machine_bits(&self) -> f64 {
        self.machines
            .iter()
            .map(|m| m.size_bits())
            .fold(0.0, f64::max)
    }

    /// RWR query on node `q`, answered entirely by `q`'s machine.
    pub fn rwr(&self, q: NodeId, restart: f64) -> Vec<f64> {
        match &self.machines[self.route(q)] {
            MachineStore::Summary(s) => rwr_summary(s, q, restart),
            MachineStore::Subgraph(g) => pgs_queries::rwr_exact(g, q, restart),
        }
    }

    /// HOP query on node `q`, answered entirely by `q`'s machine.
    /// Unreachable nodes are `u32::MAX` as usual.
    pub fn hops(&self, q: NodeId) -> Vec<u32> {
        match &self.machines[self.route(q)] {
            MachineStore::Summary(s) => hops_summary(s, q),
            MachineStore::Subgraph(g) => pgs_queries::hops_exact(g, q),
        }
    }

    /// PHP query on node `q`, answered entirely by `q`'s machine.
    pub fn php(&self, q: NodeId, c: f64) -> Vec<f64> {
        match &self.machines[self.route(q)] {
            MachineStore::Summary(s) => php_summary(s, q, c),
            MachineStore::Subgraph(g) => pgs_queries::php_exact(g, q, c),
        }
    }

    /// Scatter-gather batch serving: the Alg.-3 query loop amortized
    /// over a whole batch. Each query node routes to its machine; every
    /// summary machine that receives at least one query compiles its
    /// [`QueryEngine`] plan once and reuses it (plus recycled scratch)
    /// for all of its queries, and the independent queries fan out over
    /// `exec` with deterministic index-order reassembly. Answers are
    /// byte-identical to calling [`Cluster::rwr`] / [`Cluster::hops`] /
    /// [`Cluster::php`] per node, at any thread count (hop counts are
    /// returned as `f64` with unreachable targets mapped to
    /// `f64::INFINITY`).
    pub fn query_batch(&self, qs: &[NodeId], query: BatchQuery, exec: &Exec) -> Vec<Vec<f64>> {
        // Compile one plan per summary machine that will actually answer.
        let mut needed = vec![false; self.machines.len()];
        for &q in qs {
            needed[self.route(q)] = true;
        }
        let engines: Vec<Option<QueryEngine>> = self
            .machines
            .iter()
            .zip(&needed)
            .map(|(m, &need)| match m {
                MachineStore::Summary(s) if need => Some(QueryEngine::new(s)),
                _ => None,
            })
            .collect();
        exec.map_indexed(qs, |_, &q| {
            let mi = self.route(q);
            match (&self.machines[mi], &engines[mi]) {
                (MachineStore::Summary(_), Some(e)) => match query {
                    BatchQuery::Rwr(restart) => e.rwr(q, restart),
                    BatchQuery::Hop => hops_as_f64(&e.hops(q)),
                    BatchQuery::Php(c) => e.php(q, c),
                },
                (MachineStore::Subgraph(g), _) => match query {
                    BatchQuery::Rwr(restart) => pgs_queries::rwr_exact(g, q, restart),
                    BatchQuery::Hop => hops_as_f64(&pgs_queries::hops_exact(g, q)),
                    BatchQuery::Php(c) => pgs_queries::php_exact(g, q, c),
                },
                (MachineStore::Summary(_), None) => {
                    unreachable!("plan compiled for every routed summary machine")
                }
            }
        })
    }
}

/// Raw hop counts as `f64`, unreachable (`u32::MAX`) mapped to `+∞`
/// (callers scoring against ground truth want
/// [`pgs_queries::hops_to_f64`]'s longest-path convention instead).
fn hops_as_f64(hops: &[u32]) -> Vec<f64> {
    hops.iter()
        .map(|&d| {
            if d == u32::MAX {
                f64::INFINITY
            } else {
                d as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::gen::planted_partition;
    use pgs_queries::{hops_to_f64, smape};

    fn test_graph() -> Graph {
        planted_partition(240, 8, 1000, 140, 3)
    }

    #[test]
    fn pegasus_cluster_meets_per_machine_budget() {
        let g = test_graph();
        // Per-machine memory k = ratio × Size(G), per Sect. V-F.
        let budget = 0.5 * g.size_bits();
        let c = Cluster::build(&g, 8, budget, &Backend::Pegasus(Default::default()), 1);
        assert_eq!(c.num_machines(), 8);
        assert!(c.max_machine_bits() <= budget + 1e-9);
    }

    #[test]
    fn ssumm_cluster_replicates_one_summary() {
        let g = test_graph();
        let budget = 0.5 * g.size_bits();
        let c = Cluster::build(&g, 8, budget, &Backend::Ssumm(Default::default()), 1);
        let first = c.machine(0).size_bits();
        for i in 1..8 {
            assert_eq!(c.machine(i).size_bits(), first);
        }
    }

    #[test]
    fn subgraph_cluster_meets_budget() {
        let g = test_graph();
        let budget = 0.4 * g.size_bits();
        for method in Method::ALL {
            let c = Cluster::build(&g, 8, budget, &Backend::Subgraph(method), 2);
            assert!(
                c.max_machine_bits() <= budget + 1e-9,
                "{} overflows budget",
                method.name()
            );
        }
    }

    #[test]
    fn every_node_routes_to_a_machine() {
        let g = test_graph();
        let budget = 0.5 * g.size_bits();
        let c = Cluster::build(&g, 4, budget, &Backend::Pegasus(Default::default()), 3);
        for u in g.nodes() {
            assert!(c.route(u) < 4);
        }
    }

    #[test]
    fn queries_return_full_vectors() {
        let g = test_graph();
        let budget = 0.5 * g.size_bits();
        for backend in [
            Backend::Pegasus(Default::default()),
            Backend::Ssumm(Default::default()),
            Backend::Subgraph(Method::Louvain),
        ] {
            let c = Cluster::build(&g, 4, budget, &backend, 4);
            let r = c.rwr(7, 0.05);
            assert_eq!(r.len(), g.num_nodes());
            let h = c.hops(7);
            assert_eq!(h.len(), g.num_nodes());
            let p = c.php(7, 0.95);
            assert_eq!(p.len(), g.num_nodes());
        }
    }

    #[test]
    fn query_batch_matches_per_call_routing_at_any_thread_count() {
        let g = test_graph();
        let budget = 0.5 * g.size_bits();
        let qs: Vec<u32> = (0..24).map(|i| i * 9).collect();
        for backend in [
            Backend::Pegasus(Default::default()),
            Backend::Ssumm(Default::default()),
            Backend::Subgraph(Method::Louvain),
        ] {
            let c = Cluster::build(&g, 4, budget, &backend, 6);
            let serial_rwr: Vec<Vec<f64>> = qs.iter().map(|&q| c.rwr(q, 0.05)).collect();
            let serial_hops: Vec<Vec<f64>> =
                qs.iter().map(|&q| super::hops_as_f64(&c.hops(q))).collect();
            let serial_php: Vec<Vec<f64>> = qs.iter().map(|&q| c.php(q, 0.95)).collect();
            for threads in [1usize, 2, 8] {
                let exec = Exec::new(threads);
                assert_eq!(
                    c.query_batch(&qs, BatchQuery::Rwr(0.05), &exec),
                    serial_rwr,
                    "rwr, t={threads}"
                );
                assert_eq!(
                    c.query_batch(&qs, BatchQuery::Hop, &exec),
                    serial_hops,
                    "hop, t={threads}"
                );
                assert_eq!(
                    c.query_batch(&qs, BatchQuery::Php(0.95), &exec),
                    serial_php,
                    "php, t={threads}"
                );
            }
        }
    }

    #[test]
    fn served_build_is_byte_identical_to_direct_build() {
        let g = Arc::new(test_graph());
        let budget = 0.5 * g.size_bits();
        let cfg = PegasusConfig::default();
        let direct = Cluster::build(&g, 4, budget, &Backend::Pegasus(cfg.clone()), 9);
        for workers in [1usize, 2, 8] {
            let served = Cluster::try_build_served(
                &g,
                4,
                budget,
                &cfg,
                9,
                ServiceConfig {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(served.part, direct.part, "workers={workers}");
            for i in 0..4 {
                let (MachineStore::Summary(a), MachineStore::Summary(b)) =
                    (direct.machine(i), served.machine(i))
                else {
                    panic!("both builds store summaries");
                };
                assert_eq!(a.num_supernodes(), b.num_supernodes(), "machine {i}");
                let edges = |s: &Summary| {
                    let mut e: Vec<(u32, u32, u32)> = s
                        .superedges()
                        .map(|(x, y, w)| (x, y, w.to_bits()))
                        .collect();
                    e.sort_unstable();
                    e
                };
                assert_eq!(edges(a), edges(b), "machine {i} superedges");
                for u in g.nodes() {
                    assert_eq!(a.supernode_of(u), b.supernode_of(u), "machine {i} node {u}");
                }
            }
        }
    }

    #[test]
    fn served_build_surfaces_typed_errors() {
        let g = Arc::new(test_graph());
        match Cluster::try_build_served(
            &g,
            4,
            f64::NAN,
            &PegasusConfig::default(),
            1,
            ServiceConfig::default(),
        ) {
            Err(PgsError::InvalidBudgetBits(_)) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("NaN budget should be rejected"),
        }
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let g = test_graph();
        let bad_budgets = [
            (f64::NAN, Backend::Pegasus(Default::default())),
            (-1.0, Backend::Ssumm(Default::default())),
        ];
        for (budget, backend) in bad_budgets {
            match Cluster::try_build(&g, 4, budget, &backend, 1) {
                Err(PgsError::InvalidBudgetBits(_)) => {}
                Err(other) => panic!("wrong error: {other}"),
                Ok(_) => panic!("budget {budget} should be rejected"),
            }
        }
    }

    #[test]
    fn personalized_cluster_is_finitely_accurate() {
        // Sanity: PeGaSus-cluster answers correlate with ground truth.
        let g = test_graph();
        let budget = 0.6 * g.size_bits();
        let c = Cluster::build(&g, 4, budget, &Backend::Pegasus(Default::default()), 5);
        let q = 11;
        let truth = hops_to_f64(&pgs_queries::hops_exact(&g, q));
        let approx = hops_to_f64(&c.hops(q));
        let err = smape(&truth, &approx);
        assert!(err < 0.9, "HOP SMAPE {err} suspiciously bad");
    }
}
