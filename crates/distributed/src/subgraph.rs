//! Budgeted local subgraphs — the "Potential Alternatives" of Sect. IV.
//!
//! For the graph-partitioning baselines of Fig. 12, each machine stores
//! an *uncompressed* subgraph of at most `k` bits "composed of the edges
//! closest to the i-th subset": edges are ranked by hop distance from
//! the subset `V_i` and added until the bit budget (Eq. 4 accounting,
//! `2·|E_i|·log2|V|`) is exhausted.

use pgs_graph::traverse::multi_source_bfs;
use pgs_graph::{Graph, GraphBuilder, NodeId};

/// Builds the size-`k`-bits subgraph closest to `subset`.
///
/// Edges are ordered by `min(D(u, subset), D(v, subset))`, then by
/// `max(...)` as a tie-break, so the subgraph grows outward from the
/// subset in BFS layers. The result keeps the full node-id space (absent
/// nodes are isolated), which lets per-machine answers scatter directly
/// into `|V|`-length vectors.
pub fn local_subgraph(g: &Graph, subset: &[NodeId], budget_bits: f64) -> Graph {
    let n = g.num_nodes();
    if n == 0 {
        return Graph::empty(0);
    }
    let bits_per_edge = 2.0 * (n.max(2) as f64).log2();
    let max_edges = (budget_bits / bits_per_edge).floor() as usize;

    let dist = multi_source_bfs(g, subset);
    let mut ranked: Vec<(u32, u32, NodeId, NodeId)> = g
        .edges()
        .map(|(u, v)| {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            (du.min(dv), du.max(dv), u, v)
        })
        .collect();
    ranked.sort_unstable();

    let mut b = GraphBuilder::with_capacity(n, max_edges.min(ranked.len()));
    for &(_, _, u, v) in ranked.iter().take(max_edges) {
        b.add_edge(u, v);
    }
    b.ensure_nodes(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::builder::graph_from_edges;
    use pgs_graph::gen::barabasi_albert;

    #[test]
    fn keeps_closest_edges_first() {
        // Path 0-1-2-3-4; subset {0}; budget for 2 edges.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bits = 2.0 * (5f64).log2() * 2.0; // two edges
        let sub = local_subgraph(&g, &[0], bits);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(3, 4));
    }

    #[test]
    fn full_budget_keeps_everything() {
        let g = barabasi_albert(100, 3, 1);
        let sub = local_subgraph(&g, &[0], g.size_bits() + 1.0);
        assert_eq!(sub.num_edges(), g.num_edges());
    }

    #[test]
    fn zero_budget_keeps_nothing() {
        let g = barabasi_albert(50, 2, 2);
        let sub = local_subgraph(&g, &[0], 0.0);
        assert_eq!(sub.num_edges(), 0);
        assert_eq!(sub.num_nodes(), 50, "node-id space preserved");
    }

    #[test]
    fn size_respects_budget() {
        let g = barabasi_albert(200, 3, 5);
        let budget = 0.4 * g.size_bits();
        let sub = local_subgraph(&g, &[3, 4, 5], budget);
        assert!(sub.size_bits() <= budget);
        assert!(sub.num_edges() > 0);
    }

    #[test]
    fn subset_interior_is_covered_before_periphery() {
        let g = barabasi_albert(300, 3, 8);
        let subset: Vec<u32> = (0..30).collect();
        let budget = 0.3 * g.size_bits();
        let sub = local_subgraph(&g, &subset, budget);
        let dist = multi_source_bfs(&g, &subset);
        // Every kept edge must be at least as close as every dropped edge.
        let max_kept = sub
            .edges()
            .map(|(u, v)| dist[u as usize].min(dist[v as usize]))
            .max()
            .unwrap();
        let dropped_closer = g
            .edges()
            .filter(|&(u, v)| !sub.has_edge(u, v))
            .filter(|&(u, v)| dist[u as usize].min(dist[v as usize]) + 1 < max_kept)
            .count();
        assert_eq!(dropped_closer, 0, "closer edges were dropped");
    }
}
