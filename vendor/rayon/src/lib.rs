//! Offline stand-in for `rayon`: the scoped fork-join subset this
//! workspace uses, implemented over [`std::thread::scope`].
//!
//! The container this workspace builds in has no crates.io access, so the
//! real work-stealing rayon cannot be fetched. The parallel engine in
//! `pgs-core` only needs structured fork-join — it decomposes each phase
//! into one task per worker up front (deterministic chunking, no
//! stealing), so plain scoped OS threads deliver the same parallelism:
//! a [`scope`] spawning `k` tasks runs them on `k` threads and joins.
//!
//! Spawning an OS thread costs tens of microseconds; the engine amortizes
//! that by spawning once per phase (a few dozen scopes per run), not once
//! per item.

use std::num::NonZeroUsize;

/// A fork-join scope handing out [`Scope::spawn`]; mirrors
/// `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope; all tasks
    /// are joined before [`scope`] returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Creates a fork-join scope: every task spawned inside has completed by
/// the time `scope` returns. Mirrors `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs both closures, potentially in parallel, returning both results.
/// Mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join task panicked"))
    })
}

/// Number of hardware threads available to this process (rayon's default
/// pool size).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scope_tasks_can_write_disjoint_chunks() {
        let mut data = vec![0u32; 100];
        scope(|s| {
            for (i, chunk) in data.chunks_mut(25).enumerate() {
                s.spawn(move |_| {
                    for x in chunk.iter_mut() {
                        *x = i as u32 + 1;
                    }
                });
            }
        });
        assert!(data[..25].iter().all(|&x| x == 1));
        assert!(data[75..].iter().all(|&x| x == 4));
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                counter.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
