//! The case-execution loop (`proptest::test_runner` subset).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the inputs are outside the property's
    /// domain; the case is discarded, not failed.
    Reject,
    /// The property itself failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// FNV-1a over the test name: gives each test its own deterministic
/// input stream without global state.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs the property `f` until `config.cases` cases pass; panics on the
/// first failing case (with its case index, so the exact inputs can be
/// regenerated) or when rejects outnumber the case budget 10:1.
pub fn run<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng =
            StdRng::seed_from_u64(base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        case += 1;
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases * 10,
                    "proptest '{name}': too many rejected cases ({rejected}) for {} required",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' case #{case} failed:\n{msg}");
            }
        }
    }
}
