//! Offline stand-in for `proptest`: deterministic random-input testing
//! with the API subset this workspace uses — the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, range/tuple/[`any`] strategies,
//! [`collection::vec`], `prop_assert*`/`prop_assume!`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and message only) and fully deterministic input streams
//! (seeded per test name + case index), which makes CI failures exactly
//! reproducible.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body against
/// [`test_runner::ProptestConfig::cases`] random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::test_runner::run($cfg, stringify!($name), |__pgs_proptest_rng| {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            __pgs_proptest_rng,
                        );
                    )*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discards the current case (does not count toward the case budget)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose((a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
        }

        #[test]
        fn any_u64_varies(x in any::<u64>(), y in any::<u64>()) {
            // Not a correctness property, but catches a constant generator.
            prop_assume!(x != 0);
            prop_assert!(x != 0);
            let _ = y;
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0.0f64..10.0, 2..40)) {
            prop_assert!((2..40).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0.0..10.0).contains(&x)));
        }
    }

    proptest! {
        // No #[test] attribute: invoked manually by the should_panic test.
        fn impossible_bound(x in 0usize..10) {
            prop_assert!(x > 100, "assertion failed: impossible bound on {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics() {
        impossible_bound();
    }
}
