//! The [`any`] strategy (`proptest::arbitrary` subset).

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::strategy::Strategy;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u32()
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u32() as i32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mantissa = rng.random_range(-1.0f64..1.0);
        let exp = rng.random_range(0u32..64) as i32 - 32;
        mantissa * (exp as f64).exp2()
    }
}

/// The full-range strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
