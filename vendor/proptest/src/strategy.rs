//! Value-generation strategies (`proptest::strategy` subset).

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with a function, mirroring
    /// `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields clones of one value (`proptest::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}
