//! Collection strategies (`proptest::collection` subset).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Admissible size specifications for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a random length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
