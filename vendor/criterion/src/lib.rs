//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the API subset the workspace's `benches/` use
//! ([`Criterion::bench_function`], benchmark groups, [`Bencher::iter`],
//! [`Bencher::iter_batched`], the [`criterion_group!`]/[`criterion_main!`]
//! macros).
//!
//! No statistical analysis or HTML reports — each benchmark runs a fixed
//! number of samples and prints min/mean/max to stdout, which is enough
//! to track the perf trajectory offline. Respects a benchmark-name filter
//! passed on the command line like the real harness
//! (`cargo bench -- shingle`).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How [`Bencher::iter_batched`] groups setup outputs per timing batch.
/// The distinction matters for the real criterion's allocation
/// accounting; here both run setup-once-per-sample.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark measurement driver passed to the closure.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations, one per executed sample.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Times `routine` on a fresh `setup()` output per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

fn print_report(name: &str, times: &[Duration]) {
    if times.is_empty() {
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().unwrap();
    let max = times.iter().max().unwrap();
    println!(
        "bench: {name:<48} samples {:>3}  min {:>12?}  mean {:>12?}  max {:>12?}",
        times.len(),
        min,
        mean,
        max
    );
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Reserved for API compatibility; the offline harness measures
    /// wall-clock only, so throughput settings are accepted and ignored.
    pub fn throughput(&mut self, _elements: u64) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.samples, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line
    /// (`cargo bench -- <filter>`), skipping harness flags.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    fn run_one<F>(&self, name: &str, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples,
            times: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        print_report(name, &bencher.times);
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, self.default_samples, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 10);
    }

    #[test]
    fn group_sample_size_is_respected() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("t", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(4);
            let mut next = 0u32;
            g.bench_function("t", |b| {
                b.iter_batched(
                    || {
                        next += 1;
                        next
                    },
                    |v| seen.push(v),
                    BatchSize::SmallInput,
                )
            });
        }
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
