//! Slice sampling helpers (`rand::seq` subset).

use crate::distr::uniform_u64;
use crate::RngCore;

/// Random slice operations, blanket-implemented for `[T]`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}
