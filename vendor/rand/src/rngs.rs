//! Concrete generators (`rand::rngs` subset).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream `rand`'s `StdRng` is ChaCha12; xoshiro256++ keeps the same
/// contract this workspace relies on (fast, high-quality, reproducible
/// from a seed) in a few lines with no dependencies. Streams therefore
/// differ from upstream, which is fine: all randomized behavior in the
/// workspace is defined relative to this generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step used for seed expansion (the same scheme
/// `rand_core::SeedableRng::seed_from_u64` uses).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut sm).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
