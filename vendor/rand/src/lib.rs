//! Offline stand-in for the `rand` crate, implementing the API subset this
//! workspace uses: [`rngs::StdRng`] (xoshiro256++), [`SeedableRng`],
//! [`Rng::random_range`]/[`Rng::random_bool`], and
//! [`seq::SliceRandom`]'s `shuffle`/`choose`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` cannot be fetched; this crate keeps the public surface
//! source-compatible (rand 0.9 naming) while staying tiny and fully
//! deterministic. Streams differ from upstream `rand` — only
//! self-consistency (same seed ⇒ same stream) is guaranteed, which is all
//! the workspace relies on.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything above is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for [`rngs::StdRng`]).
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like `rand_core`'s default implementation does.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`low..high`). Supports the integer
    /// and float ranges used across the workspace.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        distr::unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a supported type (`u64`, `u32`, `f64 ∈ [0,1)`,
    /// `bool`).
    fn random<T: distr::Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform sampling machinery (the `rand::distr` module subset).
pub mod distr {
    use super::RngCore;

    /// A half-open range a value can be uniformly sampled from.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps 64 random bits to `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn unit_f64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased integer sampling from `[0, n)` via Lemire's multiply-shift
    /// method, rejecting only the biased low zone (`2^64 mod n` values).
    #[inline]
    pub fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut m = (rng.next_u64() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n; // 2^64 mod n
            while lo < threshold {
                m = (rng.next_u64() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + uniform_u64(rng, span) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every u64 is valid.
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_u64(rng, span) as $t
                }
            }
        )*};
    }
    impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

    impl SampleRange<f64> for core::ops::Range<f64> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (self.end - self.start) * unit_f64(rng.next_u64())
        }
    }

    impl SampleRange<f32> for core::ops::Range<f32> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
        }
    }

    /// Types [`super::Rng::random`] can produce.
    pub trait Standard: Sized {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64())
        }
    }
    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..1000).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits} hits for p=0.3");
    }
}
