//! Offline stand-in for `rustc-hash`: the Fx multiply-mix hasher plus the
//! `FxHashMap`/`FxHashSet` aliases. The hash function follows the classic
//! Firefox/rustc scheme (word-at-a-time multiply-rotate-xor), which is
//! what makes these maps fast for the small integer keys (node and
//! supernode ids) this workspace keys almost everything by.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: one multiply and rotate per word of input. Not
/// collision-resistant against adversaries — ideal for trusted integer
/// keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            s.insert(i);
        }
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn hash_differs_across_values() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
    }
}
